/**
 * @file
 * End-to-end tests for trace capture and replay: capturing a workload
 * does not perturb the run, replaying the captured trace reproduces
 * the run's complete results (stats included), lock records replay
 * execution-driven through the shared LockManager, and transaction
 * markers restore the throughput metric.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/runner.hh"
#include "exp/spec.hh"
#include "sim/logging.hh"
#include "workload/trace/trace_capture.hh"
#include "workload/trace/trace_reader.hh"
#include "workload/trace/trace_replay.hh"
#include "workload/workload_factory.hh"

namespace persim
{

using exp::ExperimentSpec;
using exp::JobOutcome;
using workload::trace::TraceReader;
using workload::trace::TraceRecord;

namespace
{

/** A micro/synthetic cell small enough to round-trip quickly. */
ExperimentSpec
smallSpec(const std::string &workload, std::uint64_t ops)
{
    ExperimentSpec spec;
    spec.sweep = "test";
    spec.workload = workload;
    spec.configLabel = "LB++";
    spec.cores = 4;
    spec.ops = ops;
    spec.seed = 1;
    return spec;
}

std::string
tempTracePath(const std::string &tag)
{
    return testing::TempDir() + "persim_" + tag + ".ptrace";
}

/** Full outcome serialization, stats included. */
std::string
outcomeJson(const JobOutcome &o)
{
    return o.toJson(true).dump(2);
}

std::shared_ptr<const TraceReader>
readerFromText(const std::string &text)
{
    std::istringstream is(text);
    auto data = workload::trace::parseTextTrace(is, "inline");
    auto reader = std::make_shared<const TraceReader>(
        workload::trace::encodeTrace(data), "inline");
    reader->validate();
    return reader;
}

} // namespace

TEST(TraceReplay, RoundTripsEveryMicroBenchmark)
{
    for (auto kind : workload::allMicroKinds()) {
        const std::string name = workload::toString(kind);
        const std::string path = tempTracePath("micro_" + name);

        ExperimentSpec direct = smallSpec(name, 50);
        const JobOutcome directOut = exp::runJob(direct, 1);
        ASSERT_TRUE(directOut.ok) << name << ": " << directOut.error;

        // Capturing must not perturb the run in any observable way.
        ExperimentSpec capture = direct;
        capture.captureFile = path;
        const JobOutcome captureOut = exp::runJob(capture, 1);
        ASSERT_TRUE(captureOut.ok) << name << ": " << captureOut.error;
        EXPECT_EQ(outcomeJson(directOut), outcomeJson(captureOut))
            << name << ": capture perturbed the run";

        // Replaying the capture must reproduce the run bit for bit.
        ExperimentSpec replay = direct;
        replay.traceFile = path;
        const JobOutcome replayOut = exp::runJob(replay, 1);
        ASSERT_TRUE(replayOut.ok) << name << ": " << replayOut.error;
        EXPECT_EQ(outcomeJson(directOut), outcomeJson(replayOut))
            << name << ": replay diverged from the captured run";

        std::remove(path.c_str());
    }
}

TEST(TraceReplay, RoundTripsASyntheticWorkload)
{
    const std::string path = tempTracePath("synthetic");
    ExperimentSpec direct = smallSpec("canneal", 300);
    const JobOutcome directOut = exp::runJob(direct, 1);
    ASSERT_TRUE(directOut.ok) << directOut.error;

    ExperimentSpec capture = direct;
    capture.captureFile = path;
    const JobOutcome captureOut = exp::runJob(capture, 1);
    ASSERT_TRUE(captureOut.ok) << captureOut.error;
    EXPECT_EQ(outcomeJson(directOut), outcomeJson(captureOut));

    ExperimentSpec replay = direct;
    replay.traceFile = path;
    const JobOutcome replayOut = exp::runJob(replay, 1);
    ASSERT_TRUE(replayOut.ok) << replayOut.error;
    EXPECT_EQ(outcomeJson(directOut), outcomeJson(replayOut));

    std::remove(path.c_str());
}

TEST(TraceReplay, CapturedTraceCarriesMetaAndTransactions)
{
    const std::string path = tempTracePath("meta");
    ExperimentSpec capture = smallSpec("queue", 40);
    capture.captureFile = path;
    const JobOutcome out = exp::runJob(capture, 1);
    ASSERT_TRUE(out.ok) << out.error;

    auto reader = workload::trace::openTrace(path);
    EXPECT_EQ(reader->meta().name, "queue");
    EXPECT_EQ(reader->meta().threadCount, 4u);
    EXPECT_EQ(reader->meta().seed, 1u);
    EXPECT_GT(reader->totalRecords(), 0u);

    // The TxnMark records must add up to the run's transaction count,
    // and every stream must end in a halt.
    std::uint64_t txns = 0;
    for (unsigned t = 0; t < reader->meta().threadCount; ++t) {
        auto cursor = reader->stream(t);
        TraceRecord r;
        TraceRecord last;
        while (cursor.next(r)) {
            if (r.kind == TraceRecord::Kind::TxnMark)
                txns += r.count;
            last = r;
        }
        EXPECT_EQ(last.kind, TraceRecord::Kind::Halt) << "thread " << t;
    }
    EXPECT_EQ(txns, out.result.transactions);
    std::remove(path.c_str());
}

TEST(TraceReplay, ThreadCountMismatchIsNamedError)
{
    auto reader = readerFromText("ptrace v1\n"
                                 "threads 2\n"
                                 "thread 0\n@0 halt\n"
                                 "thread 1\n@0 halt\n");
    try {
        workload::trace::makeTraceReplay(reader, 8);
        FAIL() << "expected SimFatal";
    } catch (const SimFatal &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("2 thread(s)"), std::string::npos) << msg;
        EXPECT_NE(msg.find("8 core(s)"), std::string::npos) << msg;
    }
}

TEST(TraceReplay, LockRecordsReplayThroughTheLockManager)
{
    // Both threads fight over the lock word at 0x100; thread 0 also
    // reports one transaction.
    auto reader = readerFromText("ptrace v1\n"
                                 "name locks\n"
                                 "threads 2\n"
                                 "thread 0\n"
                                 "@0 lock 0x100\n"
                                 "@10 store 0x200\n"
                                 "@20 txn 1\n"
                                 "@20 unlock 0x100\n"
                                 "@30 halt\n"
                                 "thread 1\n"
                                 "@0 lock 0x100\n"
                                 "@40 unlock 0x100\n"
                                 "@50 halt\n");
    auto ws = workload::trace::makeTraceReplay(reader, 2);
    ASSERT_EQ(ws.size(), 2u);
    cpu::Workload &w0 = *ws[0];
    cpu::Workload &w1 = *ws[1];

    // Thread 0 probes the free lock and wins it.
    cpu::MemOp op = w0.next(0);
    ASSERT_EQ(op.kind, cpu::MemOp::Kind::Load);
    EXPECT_EQ(op.addr, 0x100u);
    w0.onLoadComplete(0x100, 5);
    op = w0.next(5);
    ASSERT_EQ(op.kind, cpu::MemOp::Kind::Store) << "winning CAS";
    EXPECT_EQ(op.addr, 0x100u);

    // Thread 1 probes while the lock is held: backoff, then re-probe.
    op = w1.next(6);
    ASSERT_EQ(op.kind, cpu::MemOp::Kind::Load);
    w1.onLoadComplete(0x100, 9);
    op = w1.next(9);
    ASSERT_EQ(op.kind, cpu::MemOp::Kind::Compute)
        << "contended probe must back off";
    EXPECT_GT(op.cycles, 0u);
    op = w1.next(30);
    ASSERT_EQ(op.kind, cpu::MemOp::Kind::Load) << "re-probe";

    // Thread 0 finishes its critical section and releases.
    op = w0.next(12);
    ASSERT_EQ(op.kind, cpu::MemOp::Kind::Store); // @10 store 0x200
    EXPECT_EQ(op.addr, 0x200u);
    op = w0.next(22);
    ASSERT_EQ(op.kind, cpu::MemOp::Kind::Store); // unlock write
    EXPECT_EQ(op.addr, 0x100u);
    EXPECT_EQ(w0.transactions(), 1u) << "txn record before unlock";
    op = w0.next(32);
    EXPECT_EQ(op.kind, cpu::MemOp::Kind::Halt);

    // Now thread 1's pending probe can succeed.
    w1.onLoadComplete(0x100, 35);
    op = w1.next(35);
    ASSERT_EQ(op.kind, cpu::MemOp::Kind::Store) << "winning CAS";
    op = w1.next(45);
    ASSERT_EQ(op.kind, cpu::MemOp::Kind::Store); // unlock write
    op = w1.next(55);
    EXPECT_EQ(op.kind, cpu::MemOp::Kind::Halt);
    EXPECT_EQ(w1.transactions(), 0u);
}

TEST(TraceReplay, EmptyStreamHaltsImmediately)
{
    auto reader = readerFromText("ptrace v1\n"
                                 "threads 2\n"
                                 "thread 0\n"
                                 "@0 store 0x40\n@1 halt\n"
                                 "thread 1\n");
    auto ws = workload::trace::makeTraceReplay(reader, 2);
    EXPECT_EQ(ws[1]->next(0).kind, cpu::MemOp::Kind::Halt);
    EXPECT_EQ(ws[1]->next(1).kind, cpu::MemOp::Kind::Halt)
        << "halt must be sticky";
}

TEST(TraceReplay, ReplayIsDeterministicAcrossRuns)
{
    const std::string path = tempTracePath("deterministic");
    ExperimentSpec capture = smallSpec("sps", 40);
    capture.captureFile = path;
    ASSERT_TRUE(exp::runJob(capture, 1).ok);

    ExperimentSpec replay = smallSpec("sps", 40);
    replay.traceFile = path;
    const JobOutcome a = exp::runJob(replay, 1);
    const JobOutcome b = exp::runJob(replay, 1);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(outcomeJson(a), outcomeJson(b));
    std::remove(path.c_str());
}

} // namespace persim
