/**
 * @file
 * Microbenchmarks for the event-kernel hot path: schedule/run and
 * schedule/cancel churn at 1M events, with small and oversized
 * captures, plus the InlineFunction construct/invoke cost in
 * isolation. These are the operations every simulated cycle pays for;
 * see BENCH_hotpath.json for the end-to-end figure-level numbers.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>

#include "prof/phase.hh"
#include "sim/event_queue.hh"
#include "sim/inline_callback.hh"
#include "sim/trace.hh"

namespace
{

using persim::EventQueue;
using persim::InlineCallback;
using persim::Tick;

constexpr std::uint64_t kEvents = 1'000'000;

/** Schedule-and-drain with a minimal ([this]-sized) capture. */
void
BM_ScheduleRun_SmallCapture(benchmark::State &state)
{
    std::uint64_t sink = 0;
    for (auto _ : state) {
        EventQueue eq;
        for (std::uint64_t i = 0; i < kEvents; ++i)
            eq.schedule(i & 1023, [&sink] { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kEvents));
}
BENCHMARK(BM_ScheduleRun_SmallCapture)->Unit(benchmark::kMillisecond);

/** Schedule-and-drain with the largest capture that still fits inline
 * (six pointers) — the upper edge of the no-allocation path. */
void
BM_ScheduleRun_InlineEdgeCapture(benchmark::State &state)
{
    struct Fat
    {
        std::uint64_t a, b, c, d, e;
        std::uint64_t *sink;
    };
    static_assert(sizeof(Fat) == InlineCallback::kInlineBytes);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        EventQueue eq;
        for (std::uint64_t i = 0; i < kEvents; ++i) {
            Fat fat{i, i + 1, i + 2, i + 3, i + 4, &sink};
            eq.schedule(i & 1023, [fat] { *fat.sink += fat.a; });
        }
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kEvents));
}
BENCHMARK(BM_ScheduleRun_InlineEdgeCapture)->Unit(benchmark::kMillisecond);

/** Oversized capture: exercises the CallbackArena free-list fallback
 * (continuation-over-continuation chains take this path). */
void
BM_ScheduleRun_ArenaCapture(benchmark::State &state)
{
    struct Huge
    {
        std::uint64_t pad[9];
        std::uint64_t *sink;
    };
    static_assert(sizeof(Huge) > InlineCallback::kInlineBytes);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        EventQueue eq;
        for (std::uint64_t i = 0; i < kEvents; ++i) {
            Huge h{{i}, &sink};
            eq.schedule(i & 1023, [h] { *h.sink += h.pad[0]; });
        }
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kEvents));
}
BENCHMARK(BM_ScheduleRun_ArenaCapture)->Unit(benchmark::kMillisecond);

/** Schedule + cancel churn: every second event is cancelled before the
 * drain. Exercises the generation-bit cancel and node recycling. */
void
BM_ScheduleCancelRun(benchmark::State &state)
{
    std::uint64_t sink = 0;
    for (auto _ : state) {
        EventQueue eq;
        for (std::uint64_t i = 0; i < kEvents; ++i) {
            auto id = eq.schedule(i & 1023, [&sink] { ++sink; });
            if (i & 1)
                eq.cancel(id);
        }
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kEvents));
}
BENCHMARK(BM_ScheduleCancelRun)->Unit(benchmark::kMillisecond);

/** Steady-state self-rescheduling chain (the shape simulation objects
 * actually produce: one event in flight per object). */
void
BM_SelfRescheduleChain(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t count = 0;
        std::function<void()> chain = [&] {
            if (++count < kEvents)
                eq.scheduleIn(1, chain);
        };
        eq.scheduleIn(1, chain);
        eq.run();
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kEvents));
}
BENCHMARK(BM_SelfRescheduleChain)->Unit(benchmark::kMillisecond);

/** InlineFunction construct+invoke in isolation (no queue). */
void
BM_InlineCallbackInvoke(benchmark::State &state)
{
    std::uint64_t sink = 0;
    for (auto _ : state) {
        InlineCallback cb([&sink] { ++sink; });
        cb();
        benchmark::DoNotOptimize(cb);
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_InlineCallbackInvoke);

/**
 * The disabled observability probe path: exactly what every model
 * probe site pays per event when no Recorder is attached — one
 * thread-local load and a predictable branch. A per-event cost here
 * shows up multiplied by ~10^8 in a figure sweep, so this is the
 * benchmark that enforces "zero-cost when off". Compare against
 * BM_ScheduleRun_SmallCapture: the delta must stay within noise.
 */
void
BM_ScheduleRun_DisabledProbe(benchmark::State &state)
{
    std::uint64_t sink = 0;
    for (auto _ : state) {
        EventQueue eq;
        for (std::uint64_t i = 0; i < kEvents; ++i) {
            eq.schedule(i & 1023, [&sink, &eq] {
                ++sink;
                if (persim::trace::probing()) [[unlikely]] {
                    persim::trace::span(eq.now(), eq.now() + 1, "bench",
                                        "tick", "Epoch");
                }
            });
        }
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kEvents));
}
BENCHMARK(BM_ScheduleRun_DisabledProbe)->Unit(benchmark::kMillisecond);

/**
 * The disabled profiler phase-scope path: what every instrumented
 * component entry pays per event when Sampler::attachThread has not
 * run on the thread — one inlined thread-local load and a predictable
 * branch, mirroring BM_ScheduleRun_DisabledProbe for trace probes.
 * The ISSUE acceptance bar ("--prof off ⇒ sweep wall time within 2%")
 * rests on this staying at parity with the probe benchmark.
 */
void
BM_ScheduleRun_DisabledPhaseScope(benchmark::State &state)
{
    std::uint64_t sink = 0;
    for (auto _ : state) {
        EventQueue eq;
        for (std::uint64_t i = 0; i < kEvents; ++i) {
            eq.schedule(i & 1023, [&sink] {
                persim::prof::ScopedPhase phase(
                    persim::prof::Phase::EventLoop);
                ++sink;
            });
        }
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kEvents));
}
BENCHMARK(BM_ScheduleRun_DisabledPhaseScope)
    ->Unit(benchmark::kMillisecond);

/** std::function construct+invoke for comparison. */
void
BM_StdFunctionInvoke(benchmark::State &state)
{
    std::uint64_t sink = 0;
    for (auto _ : state) {
        std::function<void()> cb([&sink] { ++sink; });
        cb();
        benchmark::DoNotOptimize(cb);
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_StdFunctionInvoke);

} // namespace

BENCHMARK_MAIN();
