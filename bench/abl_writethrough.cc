/**
 * @file
 * §7.2 ablation: the naive write-through implementation of strict
 * persistency, vs the NP baseline.
 *
 * Paper result: write-through SP is ~8x slower than NP, which is why
 * the paper implements BSP in bulk mode instead.
 */

#include "bench_util.hh"

using namespace persim;
using namespace persim::bench;
using model::PersistencyModel;
using persist::BarrierKind;

namespace
{

// Write-through is brutally slow, so default to fewer ops per thread.
void
cell(benchmark::State &state, const std::string &preset, bool strict)
{
    const std::uint64_t ops = envOps(4000);
    const unsigned cores = envCores();
    for (auto _ : state) {
        const Row &row = runBspCell(
            preset,
            strict ? PersistencyModel::Strict
                   : PersistencyModel::NoPersistency,
            BarrierKind::None, 0, false, strict ? "SP-WT" : "NP", ops,
            cores, envSeed());
        exportCounters(state, row);
    }
}

void
registerAll()
{
    // A representative subset keeps the strawman affordable.
    const std::vector<std::string> presets = {"ssca2", "radix",
                                              "barnes"};
    for (const auto &preset : presets) {
        for (bool strict : {false, true}) {
            std::string name = std::string("ablWriteThrough/") + preset +
                               "/" + (strict ? "SP-WT" : "NP");
            benchmark::RegisterBenchmark(
                name.c_str(),
                [preset, strict](benchmark::State &st) {
                    cell(st, preset, strict);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    printTable(
        "Write-through strict persistency: execution time normalized "
        "to NP (paper: ~8x)",
        {"ssca2", "radix", "barnes"}, {"SP-WT"},
        [](const std::string &w, const std::string &c) {
            const Row *row = findRow(w, c);
            const Row *base = findRow(w, "NP");
            if (!row || !base || base->result.execTicks == 0)
                return 0.0;
            return static_cast<double>(row->result.execTicks) /
                   static_cast<double>(base->result.execTicks);
        },
        "gmean", /*useGmean=*/true);
    return 0;
}
