/**
 * @file
 * §4.3 ablation: sensitivity to the number of IDT register pairs per
 * epoch (the paper provisions 4). Too few registers overflow and fall
 * back to online flushes; extra registers buy nothing once overflows
 * vanish.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace persim;
using namespace persim::bench;
using model::PersistencyModel;
using persist::BarrierKind;

namespace
{

const std::vector<unsigned> kRegCounts = {1, 2, 4, 8, 16};

void
cell(benchmark::State &state, unsigned regs)
{
    const std::uint64_t ops = envOps(15000);
    const unsigned cores = envCores();
    for (auto _ : state) {
        const Row &row = runBspCell(
            "ssca2", PersistencyModel::BufferedStrict, BarrierKind::LBPP,
            /*epochSize=*/1000, /*logging=*/true,
            "regs" + std::to_string(regs), ops, cores, envSeed(),
            [regs](model::SystemConfig &cfg) {
                cfg.barrier.idtRegsPerEpoch = regs;
            });
        exportCounters(state, row);
        state.counters["idtOverflows"] = sumPerCore(
            row.stats, "persist.arbiter", ".idtOverflows", cores);
    }
}

void
registerAll()
{
    for (unsigned regs : kRegCounts) {
        std::string name =
            std::string("ablIdtRegs/ssca2/") + std::to_string(regs);
        benchmark::RegisterBenchmark(name.c_str(),
                                     [regs](benchmark::State &st) {
                                         cell(st, regs);
                                     })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    const unsigned cores = envCores();
    std::printf("\n=== IDT register sensitivity (ssca2, BSP @1K, LB++) "
                "===\n");
    std::printf("%6s %14s %14s %16s\n", "regs", "exec Mcycles",
                "overflows", "idtResolutions");
    for (unsigned regs : kRegCounts) {
        const Row *row =
            findRow("ssca2", "regs" + std::to_string(regs));
        if (!row)
            continue;
        const double ov = sumPerCore(row->stats, "persist.arbiter",
                                     ".idtOverflows", cores);
        const double idt = row->stats.count("persist.idtResolutions")
                               ? row->stats.at("persist.idtResolutions")
                               : 0;
        std::printf("%6u %14.3f %14.0f %16.0f\n", regs,
                    row->result.execTicks / 1e6, ov, idt);
    }
    return 0;
}
