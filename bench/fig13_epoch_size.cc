/**
 * @file
 * Figure 13: BSP bulk-mode execution time with hardware epoch sizes of
 * 300 / 1000 / 10000 dynamic stores (LB barrier), normalized to the
 * No-Persistency (NP) baseline.
 *
 * Paper result: overhead shrinks with epoch size (LB300 ~1.9x); LB10K
 * is best on average but LB1K wins on a few benchmarks where conflicts
 * start to dominate coalescing gains.
 *
 * Thin wrapper over src/exp: the grid comes from exp::figureSweep(13)
 * and the normalized table from exp::figureTable.
 */

#include <iostream>

#include "bench_util.hh"
#include "exp/figures.hh"
#include "workload/synthetic/presets.hh"

using namespace persim;
using namespace persim::bench;

namespace
{

void
registerAll()
{
    const exp::Sweep sweep =
        exp::figureSweep(13, envOps(20000), envCores(), envSeed());
    for (const exp::ExperimentSpec &spec : sweep.jobs) {
        const std::string name = spec.sweep + "/" + spec.workload + "/" +
                                 spec.configLabel;
        benchmark::RegisterBenchmark(name.c_str(),
                                     [spec](benchmark::State &st) {
                                         for (auto _ : st)
                                             exportCounters(
                                                 st, runSpec(spec));
                                     })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    exp::printFigureTable(std::cout, exp::figureTable(13, outcomes()));

    // Coalescing view: NVRAM line writes (data + log + checkpoint),
    // in thousands — the §7.2 mechanism behind the epoch-size effect.
    // (NP performs almost no NVRAM writes at these run lengths, so an
    // NP-normalized ratio would be meaningless.)
    std::vector<std::string> configs;
    for (const char *c : {"LB300", "LB1K", "LB10K"})
        configs.push_back(c);
    printTable(
        "NVRAM line writes (x1000; persist + log + checkpoint traffic)",
        workload::syntheticPresetNames(), configs,
        [](const std::string &w, const std::string &c) {
            const Row *row = findRow(w, c);
            if (!row)
                return 0.0;
            double total = 0;
            for (unsigned m = 0; m < 4; ++m) {
                const std::string key =
                    "mc[" + std::to_string(m) + "].nvram.writes";
                auto it = row->stats.find(key);
                if (it != row->stats.end())
                    total += it->second;
            }
            return total / 1000.0;
        },
        "amean", /*useGmean=*/false);
    return 0;
}
