/**
 * @file
 * Figure 13: BSP bulk-mode execution time with hardware epoch sizes of
 * 300 / 1000 / 10000 dynamic stores (LB barrier), normalized to the
 * No-Persistency (NP) baseline.
 *
 * Paper result: overhead shrinks with epoch size (LB300 ~1.9x); LB10K
 * is best on average but LB1K wins on a few benchmarks where conflicts
 * start to dominate coalescing gains.
 */

#include "bench_util.hh"
#include "workload/synthetic/presets.hh"

using namespace persim;
using namespace persim::bench;
using model::PersistencyModel;
using persist::BarrierKind;

namespace
{

struct Config
{
    const char *label;
    PersistencyModel pm;
    unsigned epochSize;
};

const std::vector<Config> kConfigs = {
    {"NP", PersistencyModel::NoPersistency, 0},
    {"LB300", PersistencyModel::BufferedStrict, 300},
    {"LB1K", PersistencyModel::BufferedStrict, 1000},
    {"LB10K", PersistencyModel::BufferedStrict, 10000},
};

void
cell(benchmark::State &state, const std::string &preset,
     const Config &cfg)
{
    const std::uint64_t ops = envOps(20000);
    const unsigned cores = envCores();
    for (auto _ : state) {
        const Row &row =
            runBspCell(preset, cfg.pm, BarrierKind::LB, cfg.epochSize,
                       /*logging=*/true, cfg.label, ops, cores,
                       envSeed());
        exportCounters(state, row);
    }
}

void
registerAll()
{
    for (const auto &preset : workload::syntheticPresetNames()) {
        for (const Config &cfg : kConfigs) {
            std::string name =
                std::string("fig13/") + preset + "/" + cfg.label;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [preset, cfg](benchmark::State &st) {
                    cell(st, preset, cfg);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::vector<std::string> configs;
    for (const Config &c : kConfigs) {
        if (std::string(c.label) != "NP")
            configs.push_back(c.label);
    }
    printTable(
        "Figure 13: BSP execution time normalized to NP, varying epoch "
        "size (lower is better)",
        workload::syntheticPresetNames(), configs,
        [](const std::string &w, const std::string &c) {
            const Row *row = findRow(w, c);
            const Row *base = findRow(w, "NP");
            if (!row || !base || base->result.execTicks == 0)
                return 0.0;
            return static_cast<double>(row->result.execTicks) /
                   static_cast<double>(base->result.execTicks);
        },
        "gmean", /*useGmean=*/true);

    // Coalescing view: NVRAM line writes (data + log + checkpoint),
    // in thousands — the §7.2 mechanism behind the epoch-size effect.
    // (NP performs almost no NVRAM writes at these run lengths, so an
    // NP-normalized ratio would be meaningless.)
    printTable(
        "NVRAM line writes (x1000; persist + log + checkpoint traffic)",
        workload::syntheticPresetNames(), configs,
        [](const std::string &w, const std::string &c) {
            const Row *row = findRow(w, c);
            if (!row)
                return 0.0;
            double total = 0;
            for (unsigned m = 0; m < 4; ++m) {
                const std::string key =
                    "mc[" + std::to_string(m) + "].nvram.writes";
                auto it = row->stats.find(key);
                if (it != row->stats.end())
                    total += it->second;
            }
            return total / 1000.0;
        },
        "amean", /*useGmean=*/false);
    return 0;
}
