/**
 * @file
 * §7 ablation: invalidating (clflush-like) vs non-invalidating
 * (clwb-like) cache-line flushes, under LB++ on the micro-benchmarks.
 *
 * Paper result: the non-invalidating flush is ~30% faster, because an
 * invalidating flush evicts the working set and forces refetches from
 * NVRAM.
 */

#include "bench_util.hh"

using namespace persim;
using namespace persim::bench;
using persist::BarrierKind;
using workload::MicroKind;

namespace
{

void
cell(benchmark::State &state, MicroKind kind, bool invalidating)
{
    const std::uint64_t ops = envOps(300);
    const unsigned cores = envCores();
    for (auto _ : state) {
        // Distinguish rows by config label through a tweak.
        model::SystemConfig *captured = nullptr;
        const Row &row = runBepMicro(
            kind, BarrierKind::LBPP, ops, cores, envSeed(),
            [&](model::SystemConfig &cfg) {
                cfg.barrier.invalidatingFlush = invalidating;
                captured = &cfg;
            });
        (void)captured;
        exportCounters(state, row);
        // Relabel the stored row (runBepMicro labels by barrier kind).
        rows().back().config = invalidating ? "clflush" : "clwb";
    }
}

void
registerAll()
{
    for (MicroKind kind : workload::allMicroKinds()) {
        for (bool invalidating : {false, true}) {
            std::string name = std::string("ablFlushType/") +
                               workload::toString(kind) + "/" +
                               (invalidating ? "clflush" : "clwb");
            benchmark::RegisterBenchmark(
                name.c_str(),
                [kind, invalidating](benchmark::State &st) {
                    cell(st, kind, invalidating);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::vector<std::string> workloads;
    for (auto kind : workload::allMicroKinds())
        workloads.push_back(workload::toString(kind));

    printTable(
        "Flush-type ablation: throughput of clwb-style flush "
        "normalized to clflush-style (paper: ~1.3x)",
        workloads, {"clflush", "clwb"},
        [](const std::string &w, const std::string &c) {
            const Row *row = findRow(w, c);
            const Row *base = findRow(w, "clflush");
            if (!row || !base || base->result.throughput() == 0)
                return 0.0;
            return row->result.throughput() /
                   base->result.throughput();
        },
        "gmean", /*useGmean=*/true);
    return 0;
}
