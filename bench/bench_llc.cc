/**
 * @file
 * Microbenchmarks for the flattened LLC bank hot path: the pooled
 * per-line transaction/waiter structures (FlatAddrMap + NodePool)
 * against the node-based std containers they replaced, and the victim
 * scan over the packed 32-byte CacheLine records. Every LLC request
 * pays one map insert, one-or-more list pushes, and one erase; a
 * figure sweep multiplies that by ~10^7, which is why BENCH_llc.json
 * tracks the end-to-end effect.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "cache/cache_array.hh"
#include "cache/flat_table.hh"

namespace
{

using persim::Addr;
using persim::kLineBytes;
using persim::cache::CacheArray;
using persim::cache::CacheGeometry;
using persim::cache::CacheLine;
using persim::cache::CoherenceState;
using persim::cache::FlatAddrMap;
using persim::cache::ListRef;
using persim::cache::NodePool;

constexpr std::uint64_t kOps = 1'000'000;

/** A stand-in for LlcBank's per-line entry: two list heads + a count. */
struct Entry
{
    ListRef txns;
    ListRef waiters;
    std::uint32_t txnCount = 0;
};

/** The request/finish shape: insert a line entry, push a transaction,
 * pop it, erase the entry — over a hot set the size of a busy bank. */
void
BM_FlatMapTxnChurn(benchmark::State &state)
{
    const Addr hotLines = static_cast<Addr>(state.range(0));
    struct Txn
    {
        Addr addr = 0;
        bool isWrite = false;
    };
    for (auto _ : state) {
        FlatAddrMap<Entry> lines;
        NodePool<Txn> pool;
        for (std::uint64_t i = 0; i < kOps; ++i) {
            const Addr addr = (i % hotLines) * kLineBytes;
            Entry &e = lines.insertOrFind(addr);
            e.txns.pushBack(pool, pool.alloc(Txn{addr, (i & 1) != 0}));
            ++e.txnCount;
            Entry *f = lines.find(addr);
            pool.release(f->txns.popFront(pool));
            if (--f->txnCount == 0 && f->waiters.empty())
                lines.erase(addr);
        }
        benchmark::DoNotOptimize(lines.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kOps));
}
BENCHMARK(BM_FlatMapTxnChurn)
    ->Arg(16)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

/** The structure this PR replaced: unordered_map of deques, one heap
 * node per transaction. Same access pattern for comparison. */
void
BM_UnorderedMapTxnChurn(benchmark::State &state)
{
    const Addr hotLines = static_cast<Addr>(state.range(0));
    struct Txn
    {
        Addr addr = 0;
        bool isWrite = false;
    };
    for (auto _ : state) {
        std::unordered_map<Addr, std::deque<Txn>> lines;
        for (std::uint64_t i = 0; i < kOps; ++i) {
            const Addr addr = (i % hotLines) * kLineBytes;
            lines[addr].push_back(Txn{addr, (i & 1) != 0});
            auto it = lines.find(addr);
            it->second.pop_front();
            if (it->second.empty())
                lines.erase(it);
        }
        benchmark::DoNotOptimize(lines.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kOps));
}
BENCHMARK(BM_UnorderedMapTxnChurn)
    ->Arg(16)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

/** Steady-state miss lookups: find() over a table holding the busy
 * lines of a loaded bank, mostly missing (the common case — most
 * requests arrive at an idle line). */
void
BM_FlatMapLookupMostlyMiss(benchmark::State &state)
{
    FlatAddrMap<Entry> lines;
    for (Addr i = 0; i < 64; ++i)
        lines.insertOrFind(i * 8 * kLineBytes).txnCount = 1;
    std::uint64_t hits = 0;
    Addr probe = 0;
    for (auto _ : state) {
        probe = (probe + kLineBytes) & ((Addr{1} << 16) - 1);
        hits += lines.find(probe) != nullptr;
    }
    benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_FlatMapLookupMostlyMiss);

/** The victim scan: one full-associativity LRU sweep per miss, over
 * the packed 32-byte lines (two lines per host cache line). */
void
BM_VictimScanPacked(benchmark::State &state)
{
    // The paper's Table 1 LLC bank: 1 MiB, 16-way.
    CacheArray arr("bench", CacheGeometry{1024 * 1024, 16});
    const unsigned sets = CacheGeometry{1024 * 1024, 16}.sets();
    for (Addr i = 0; i < Addr{sets} * 16; ++i) {
        const Addr addr = i * kLineBytes;
        CacheLine *way = arr.victimFor(addr, false);
        if (way)
            arr.fill(*way, addr, CoherenceState::Shared);
    }
    Addr probe = 0;
    for (auto _ : state) {
        probe += kLineBytes;
        CacheLine *v = arr.victimFor(probe, false);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_VictimScanPacked);

/** Tag-array hit lookups on the packed layout. */
void
BM_PackedFind(benchmark::State &state)
{
    CacheArray arr("bench", CacheGeometry{1024 * 1024, 16});
    const unsigned sets = CacheGeometry{1024 * 1024, 16}.sets();
    const Addr lines = Addr{sets} * 16;
    for (Addr i = 0; i < lines; ++i) {
        const Addr addr = i * kLineBytes;
        CacheLine *way = arr.victimFor(addr, false);
        if (way)
            arr.fill(*way, addr, CoherenceState::Shared);
    }
    Addr probe = 0;
    std::uint64_t hits = 0;
    for (auto _ : state) {
        probe = (probe + 7 * kLineBytes) % (lines * kLineBytes);
        hits += arr.find(probe) != nullptr;
    }
    benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_PackedFind);

} // namespace

BENCHMARK_MAIN();
