/**
 * @file
 * Shared harness for the paper-reproduction benches.
 *
 * Each bench binary registers one google-benchmark per (workload,
 * configuration) cell, runs every simulation exactly once
 * (Iterations(1) — the measured quantity is *simulated* time, not wall
 * clock), collects the rows, and prints the corresponding paper
 * figure/table after the framework finishes.
 *
 * Environment knobs:
 *   PERSIM_BENCH_OPS    per-thread operation count (scales run length)
 *   PERSIM_BENCH_CORES  number of cores (default 32, the paper's setup)
 *   PERSIM_SEED         workload seed
 */

#ifndef PERSIM_BENCH_BENCH_UTIL_HH
#define PERSIM_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "exp/runner.hh"
#include "exp/spec.hh"
#include "model/system.hh"
#include "workload/workload_factory.hh"

namespace persim::bench
{

/** One completed simulation cell. */
struct Row
{
    std::string workload;
    std::string config;
    model::SimResult result;
    std::map<std::string, double> stats;
};

/** Global row store for the current bench binary. */
std::vector<Row> &rows();

/** The same cells as full exp outcomes (for exp::figureTable). */
std::vector<exp::JobOutcome> &outcomes();

/**
 * Run one experiment spec through the exp subsystem and record it as a
 * Row (and JobOutcome). All the run* helpers below go through here.
 */
const Row &runSpec(const exp::ExperimentSpec &spec,
                   const std::function<void(model::SystemConfig &)>
                       &tweak = {});

/** Find a completed row; nullptr if missing. */
const Row *findRow(const std::string &workload,
                   const std::string &config);

std::uint64_t envOps(std::uint64_t def);
unsigned envCores(unsigned def = 32);
std::uint64_t envSeed(std::uint64_t def = 1);

/** Sum "<prefix><i><suffix>" over all per-core stat instances. */
double sumPerCore(const std::map<std::string, double> &stats,
                  const std::string &prefix, const std::string &suffix,
                  unsigned cores);

/** Build a Table-1 system for the requested core count. */
model::SystemConfig benchConfig(unsigned cores);

/**
 * Run one BEP micro-benchmark cell and record it.
 *
 * @return The stored row.
 */
const Row &runBepMicro(workload::MicroKind kind,
                       persist::BarrierKind barrier,
                       std::uint64_t opsPerThread, unsigned cores,
                       std::uint64_t seed,
                       const std::function<void(model::SystemConfig &)>
                           &tweak = {});

/** Run one BSP (or NP baseline) cell over a synthetic workload. */
const Row &runBspCell(const std::string &preset,
                      model::PersistencyModel pm,
                      persist::BarrierKind barrier, unsigned epochSize,
                      bool logging, const std::string &configLabel,
                      std::uint64_t opsPerThread, unsigned cores,
                      std::uint64_t seed,
                      const std::function<void(model::SystemConfig &)>
                          &tweak = {});

/**
 * Min-of-N reduction for repeated wall-clock measurements: the minimum
 * is the standard estimator for "how fast can this host run it" (every
 * source of noise only adds time). Used by the manual-timing benches;
 * the scripts/bench_*.sh emitters apply the same reduction via
 * scripts/bench_lib.py.
 */
double minOfN(const std::vector<double> &xs);

/** Geometric mean of @p xs (which must be positive). */
double gmean(const std::vector<double> &xs);

/** Arithmetic mean. */
double amean(const std::vector<double> &xs);

/** Print an aligned table: header row then one row per workload. */
void printTable(const std::string &title,
                const std::vector<std::string> &workloads,
                const std::vector<std::string> &configs,
                const std::function<double(const std::string &,
                                           const std::string &)> &cell,
                const std::string &meanLabel, bool useGmean);

/** Fill benchmark counters from a row (simulated metrics). */
void exportCounters(benchmark::State &state, const Row &row);

} // namespace persim::bench

#endif // PERSIM_BENCH_BENCH_UTIL_HH
