/**
 * @file
 * §4.1 ablation: per-core arbiter (O(n) coordination messages per
 * flushed epoch) vs the all-to-all bank broadcast strawman (O(n^2)).
 *
 * The timing path is identical in both designs; the strawman's cost is
 * the extra mesh traffic, which this bench quantifies.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace persim;
using namespace persim::bench;
using persist::BarrierKind;
using workload::MicroKind;

namespace
{

void
cell(benchmark::State &state, MicroKind kind, bool useArbiter)
{
    const std::uint64_t ops = envOps(200);
    const unsigned cores = envCores();
    for (auto _ : state) {
        const Row &row = runBepMicro(
            kind, BarrierKind::LBPP, ops, cores, envSeed(),
            [useArbiter](model::SystemConfig &cfg) {
                cfg.barrier.useArbiter = useArbiter;
            });
        rows().back().config = useArbiter ? "arbiter" : "allToAll";
        exportCounters(state, row);
        state.counters["meshPackets"] =
            row.stats.count("mesh.packets")
                ? row.stats.at("mesh.packets")
                : 0;
    }
}

void
registerAll()
{
    for (MicroKind kind : {MicroKind::Hash, MicroKind::Queue}) {
        for (bool arb : {true, false}) {
            std::string name = std::string("ablArbiter/") +
                               workload::toString(kind) + "/" +
                               (arb ? "arbiter" : "allToAll");
            benchmark::RegisterBenchmark(
                name.c_str(),
                [kind, arb](benchmark::State &st) {
                    cell(st, kind, arb);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
}

double
statOf(const Row *row, const char *key)
{
    if (!row)
        return 0.0;
    auto it = row->stats.find(key);
    return it == row->stats.end() ? 0.0 : it->second;
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::printf("\n=== Arbiter ablation (§4.1): mesh packets per "
                "flushed epoch ===\n");
    std::printf("%-8s %14s %14s %10s\n", "workload", "arbiter",
                "all-to-all", "ratio");
    for (const char *w : {"hash", "queue"}) {
        const Row *arb = findRow(w, "arbiter");
        const Row *ata = findRow(w, "allToAll");
        const double epochsArb =
            statOf(arb, "persist.arbiter0.epochsPersisted") * 32.0;
        (void)epochsArb;
        const double pArb = statOf(arb, "mesh.packets");
        const double pAta = statOf(ata, "mesh.packets");
        std::printf("%-8s %14.0f %14.0f %9.2fx\n", w, pArb, pAta,
                    pArb > 0 ? pAta / pArb : 0.0);
    }
    return 0;
}
