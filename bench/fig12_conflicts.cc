/**
 * @file
 * Figure 12: percentage of epochs flushed because of a conflict (out of
 * the total number of epochs), for LB / LB+IDT / LB+PF / LB++.
 *
 * Paper result: ~90% under LB and LB+IDT, ~77% under LB+PF, ~75% under
 * LB++ (amean).
 *
 * Thin wrapper over src/exp: the grid comes from exp::figureSweep(12)
 * and the table/metric from exp::figureTable / exp::conflictPct.
 */

#include <iostream>

#include "bench_util.hh"
#include "exp/figures.hh"

using namespace persim;
using namespace persim::bench;

namespace
{

void
registerAll()
{
    const exp::Sweep sweep =
        exp::figureSweep(12, envOps(300), envCores(), envSeed());
    for (const exp::ExperimentSpec &spec : sweep.jobs) {
        const std::string name = spec.sweep + "/" + spec.workload + "/" +
                                 spec.configLabel;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [spec](benchmark::State &st) {
                for (auto _ : st) {
                    exportCounters(st, runSpec(spec));
                    st.counters["conflictPct"] =
                        exp::conflictPct(outcomes().back());
                }
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    exp::printFigureTable(std::cout, exp::figureTable(12, outcomes()));
    return 0;
}
