/**
 * @file
 * Figure 12: percentage of epochs flushed because of a conflict (out of
 * the total number of epochs), for LB / LB+IDT / LB+PF / LB++.
 *
 * Paper result: ~90% under LB and LB+IDT, ~77% under LB+PF, ~75% under
 * LB++ (amean).
 */

#include "bench_util.hh"

using namespace persim;
using namespace persim::bench;
using persist::BarrierKind;
using workload::MicroKind;

namespace
{

const std::vector<BarrierKind> kVariants = {
    BarrierKind::LB,
    BarrierKind::LBIDT,
    BarrierKind::LBPF,
    BarrierKind::LBPP,
};

double
conflictPct(const Row &row, unsigned cores)
{
    const double conflicted = sumPerCore(row.stats, "persist.arbiter",
                                         ".flushIntra", cores) +
                              sumPerCore(row.stats, "persist.arbiter",
                                         ".flushInter", cores) +
                              sumPerCore(row.stats, "persist.arbiter",
                                         ".flushReplacement", cores);
    const double total = sumPerCore(row.stats, "persist.arbiter",
                                    ".epochsPersisted", cores);
    return total > 0 ? 100.0 * conflicted / total : 0.0;
}

void
cell(benchmark::State &state, MicroKind kind, BarrierKind barrier)
{
    const std::uint64_t ops = envOps(300);
    const unsigned cores = envCores();
    for (auto _ : state) {
        const Row &row =
            runBepMicro(kind, barrier, ops, cores, envSeed());
        exportCounters(state, row);
        state.counters["conflictPct"] = conflictPct(row, cores);
    }
}

void
registerAll()
{
    for (MicroKind kind : workload::allMicroKinds()) {
        for (BarrierKind barrier : kVariants) {
            std::string name = std::string("fig12/") +
                               workload::toString(kind) + "/" +
                               persist::toString(barrier);
            benchmark::RegisterBenchmark(
                name.c_str(),
                [kind, barrier](benchmark::State &st) {
                    cell(st, kind, barrier);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    const unsigned cores = envCores();
    std::vector<std::string> workloads;
    for (auto kind : workload::allMicroKinds())
        workloads.push_back(workload::toString(kind));
    std::vector<std::string> configs;
    for (auto b : kVariants)
        configs.push_back(persist::toString(b));

    printTable(
        "Figure 12: % epochs flushed because of a conflict "
        "(lower is better)",
        workloads, configs,
        [cores](const std::string &w, const std::string &c) {
            const Row *row = findRow(w, c);
            return row ? conflictPct(*row, cores) : 0.0;
        },
        "amean", /*useGmean=*/false);
    return 0;
}
