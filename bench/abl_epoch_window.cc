/**
 * @file
 * §4.3 ablation: size of the per-core in-flight epoch window (the
 * paper provisions 8, i.e. a 3-bit EpochID). Too few slots stall
 * barriers on window pressure; extra slots stop paying off once the
 * flush pipeline, not the window, is the limit.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace persim;
using namespace persim::bench;
using persist::BarrierKind;
using workload::MicroKind;

namespace
{

const std::vector<unsigned> kWindows = {2, 4, 8, 16};

void
cell(benchmark::State &state, unsigned window)
{
    const std::uint64_t ops = envOps(300);
    const unsigned cores = envCores();
    for (auto _ : state) {
        const Row &row = runBepMicro(
            MicroKind::Hash, BarrierKind::LBPP, ops, cores, envSeed(),
            [window](model::SystemConfig &cfg) {
                cfg.barrier.maxInflightEpochs = window;
            });
        rows().back().config = "w" + std::to_string(window);
        exportCounters(state, row);
        state.counters["barrierStalls"] = sumPerCore(
            row.stats, "persist.arbiter", ".barrierStalls", cores);
    }
}

void
registerAll()
{
    for (unsigned w : kWindows) {
        std::string name =
            std::string("ablEpochWindow/hash/") + std::to_string(w);
        benchmark::RegisterBenchmark(
            name.c_str(), [w](benchmark::State &st) { cell(st, w); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    const unsigned cores = envCores();
    std::printf("\n=== Epoch-window sensitivity (hash, BEP, LB++; "
                "paper provisions 8) ===\n");
    std::printf("%8s %14s %14s %14s\n", "window", "txn/Mcycle",
                "stalls", "exec Mcycles");
    for (unsigned w : kWindows) {
        const Row *row = findRow("hash", "w" + std::to_string(w));
        if (!row)
            continue;
        const double stalls = sumPerCore(row->stats, "persist.arbiter",
                                         ".barrierStalls", cores);
        std::printf("%8u %14.1f %14.0f %14.3f\n", w,
                    row->result.throughput(), stalls,
                    row->result.execTicks / 1e6);
    }
    return 0;
}
