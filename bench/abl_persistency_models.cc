/**
 * @file
 * Figure 1 flavor: relative cost of the persistency models on the same
 * workload — SP (write-through), EP (blocking barriers), BEP (buffered,
 * LB barrier), and the NP baseline.
 *
 * Expected shape (Figure 1 and §7.2): SP >> EP > BEP > NP.
 */

#include "bench_util.hh"

using namespace persim;
using namespace persim::bench;
using model::PersistencyModel;
using persist::BarrierKind;
using workload::MicroKind;

namespace
{

struct Config
{
    const char *label;
    PersistencyModel pm;
    BarrierKind barrier;
};

const std::vector<Config> kConfigs = {
    {"NP", PersistencyModel::NoPersistency, BarrierKind::None},
    {"BEP++", PersistencyModel::BufferedEpoch, BarrierKind::LBPP},
    {"BEP", PersistencyModel::BufferedEpoch, BarrierKind::LB},
    {"EP", PersistencyModel::Epoch, BarrierKind::LB},
    {"SP", PersistencyModel::Strict, BarrierKind::None},
};

void
cell(benchmark::State &state, MicroKind kind, const Config &cfg)
{
    const std::uint64_t ops = envOps(150);
    const unsigned cores = envCores();
    for (auto _ : state) {
        model::SystemConfig sysCfg = benchConfig(cores);
        applyPersistencyModel(sysCfg, cfg.pm, cfg.barrier);
        sysCfg.seed = envSeed();
        model::System sys(sysCfg);
        workload::MicroConfig mc;
        mc.kind = kind;
        mc.numThreads = cores;
        mc.opsPerThread = ops;
        mc.seed = envSeed();
        auto workloads = workload::makeMicroWorkloads(mc);
        for (unsigned t = 0; t < cores; ++t) {
            sys.setWorkload(static_cast<CoreId>(t),
                            std::move(workloads[t]));
        }
        model::SimResult res = sys.run();
        rows().push_back(Row{workload::toString(kind), cfg.label,
                             std::move(res), sys.stats()});
        exportCounters(state, rows().back());
    }
}

void
registerAll()
{
    for (MicroKind kind :
         {MicroKind::Hash, MicroKind::Queue, MicroKind::Sps}) {
        for (const Config &cfg : kConfigs) {
            std::string name = std::string("ablModels/") +
                               workload::toString(kind) + "/" +
                               cfg.label;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [kind, cfg](benchmark::State &st) {
                    cell(st, kind, cfg);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    printTable(
        "Persistency models (Figure 1): execution time normalized to "
        "NP (expected SP >> EP >= BEP > BEP++)",
        {"hash", "queue", "sps"}, {"BEP++", "BEP", "EP", "SP"},
        [](const std::string &w, const std::string &c) {
            const Row *row = findRow(w, c);
            const Row *base = findRow(w, "NP");
            if (!row || !base || base->result.execTicks == 0)
                return 0.0;
            return static_cast<double>(row->result.execTicks) /
                   static_cast<double>(base->result.execTicks);
        },
        "gmean", /*useGmean=*/true);
    return 0;
}
