#include "bench_util.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace persim::bench
{

std::vector<Row> &
rows()
{
    static std::vector<Row> store;
    return store;
}

const Row *
findRow(const std::string &workload, const std::string &config)
{
    for (const Row &r : rows()) {
        if (r.workload == workload && r.config == config)
            return &r;
    }
    return nullptr;
}

static std::uint64_t
envU64(const char *name, std::uint64_t def)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 10) : def;
}

std::uint64_t
envOps(std::uint64_t def)
{
    return envU64("PERSIM_BENCH_OPS", def);
}

unsigned
envCores(unsigned def)
{
    return static_cast<unsigned>(envU64("PERSIM_BENCH_CORES", def));
}

std::uint64_t
envSeed(std::uint64_t def)
{
    return envU64("PERSIM_SEED", def);
}

double
sumPerCore(const std::map<std::string, double> &stats,
           const std::string &prefix, const std::string &suffix,
           unsigned cores)
{
    double total = 0;
    for (unsigned c = 0; c < cores; ++c) {
        auto it = stats.find(prefix + std::to_string(c) + suffix);
        if (it != stats.end())
            total += it->second;
    }
    return total;
}

model::SystemConfig
benchConfig(unsigned cores)
{
    if (cores == 32)
        return model::SystemConfig::paperTable1();
    model::SystemConfig cfg = model::SystemConfig::smallTest(cores);
    return cfg;
}

static Row &
storeRow(const std::string &workload, const std::string &config,
         model::System &sys, model::SimResult res)
{
    if (!res.completed) {
        warn("bench cell ", workload, "/", config,
             " did not complete (deadlocked=", res.deadlocked,
             ", timedOut=", res.timedOut, ")");
    }
    if (!res.violations.empty()) {
        warn("bench cell ", workload, "/", config, " had ",
             res.violations.size(),
             " ordering violations; first: ", res.violations.front());
    }
    rows().push_back(Row{workload, config, std::move(res), sys.stats()});
    return rows().back();
}

const Row &
runBepMicro(workload::MicroKind kind, persist::BarrierKind barrier,
            std::uint64_t opsPerThread, unsigned cores,
            std::uint64_t seed,
            const std::function<void(model::SystemConfig &)> &tweak)
{
    model::SystemConfig cfg = benchConfig(cores);
    applyPersistencyModel(cfg, model::PersistencyModel::BufferedEpoch,
                          barrier);
    cfg.seed = seed;
    if (tweak)
        tweak(cfg);
    model::System sys(cfg);

    workload::MicroConfig mc;
    mc.kind = kind;
    mc.numThreads = cores;
    mc.opsPerThread = opsPerThread;
    mc.seed = seed;
    auto workloads = workload::makeMicroWorkloads(mc);
    for (unsigned t = 0; t < cores; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));

    model::SimResult res = sys.run();
    return storeRow(workload::toString(kind),
                    persist::toString(barrier), sys, std::move(res));
}

const Row &
runBspCell(const std::string &preset, model::PersistencyModel pm,
           persist::BarrierKind barrier, unsigned epochSize, bool logging,
           const std::string &configLabel, std::uint64_t opsPerThread,
           unsigned cores, std::uint64_t seed,
           const std::function<void(model::SystemConfig &)> &tweak)
{
    model::SystemConfig cfg = benchConfig(cores);
    applyPersistencyModel(cfg, pm, barrier, epochSize);
    if (pm == model::PersistencyModel::BufferedStrict && !logging) {
        cfg.barrier.logging = false; // LB++NOLOG ablation
        cfg.barrier.checkpointLines = 0;
    }
    cfg.seed = seed;
    if (tweak)
        tweak(cfg);
    model::System sys(cfg);

    auto workloads = workload::makeSyntheticWorkloads(preset, cores,
                                                      opsPerThread, seed);
    for (unsigned t = 0; t < cores; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));

    model::SimResult res = sys.run();
    return storeRow(preset, configLabel, sys, std::move(res));
}

double
gmean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0;
    for (double x : xs)
        logSum += std::log(x);
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double
amean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

void
printTable(const std::string &title,
           const std::vector<std::string> &workloads,
           const std::vector<std::string> &configs,
           const std::function<double(const std::string &,
                                      const std::string &)> &cell,
           const std::string &meanLabel, bool useGmean)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("%-12s", "workload");
    for (const auto &c : configs)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
    std::vector<std::vector<double>> perConfig(configs.size());
    for (const auto &w : workloads) {
        std::printf("%-12s", w.c_str());
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const double v = cell(w, configs[i]);
            perConfig[i].push_back(v);
            std::printf(" %12.3f", v);
        }
        std::printf("\n");
    }
    std::printf("%-12s", meanLabel.c_str());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        std::printf(" %12.3f", useGmean ? gmean(perConfig[i])
                                        : amean(perConfig[i]));
    }
    std::printf("\n");
}

void
exportCounters(benchmark::State &state, const Row &row)
{
    state.counters["simMcycles"] =
        static_cast<double>(row.result.execTicks) / 1e6;
    state.counters["events"] =
        static_cast<double>(row.result.events);
    state.counters["txns"] =
        static_cast<double>(row.result.transactions);
    state.counters["txnPerMcycle"] = row.result.throughput();
    state.counters["violations"] =
        static_cast<double>(row.result.violations.size());
}

} // namespace persim::bench
