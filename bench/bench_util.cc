#include "bench_util.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace persim::bench
{

std::vector<Row> &
rows()
{
    static std::vector<Row> store;
    return store;
}

std::vector<exp::JobOutcome> &
outcomes()
{
    static std::vector<exp::JobOutcome> store;
    return store;
}

const Row *
findRow(const std::string &workload, const std::string &config)
{
    for (const Row &r : rows()) {
        if (r.workload == workload && r.config == config)
            return &r;
    }
    return nullptr;
}

static std::uint64_t
envU64(const char *name, std::uint64_t def)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 10) : def;
}

std::uint64_t
envOps(std::uint64_t def)
{
    return envU64("PERSIM_BENCH_OPS", def);
}

unsigned
envCores(unsigned def)
{
    return static_cast<unsigned>(envU64("PERSIM_BENCH_CORES", def));
}

std::uint64_t
envSeed(std::uint64_t def)
{
    return envU64("PERSIM_SEED", def);
}

double
sumPerCore(const std::map<std::string, double> &stats,
           const std::string &prefix, const std::string &suffix,
           unsigned cores)
{
    double total = 0;
    for (unsigned c = 0; c < cores; ++c) {
        auto it = stats.find(prefix + std::to_string(c) + suffix);
        if (it != stats.end())
            total += it->second;
    }
    return total;
}

model::SystemConfig
benchConfig(unsigned cores)
{
    if (cores == 32)
        return model::SystemConfig::paperTable1();
    model::SystemConfig cfg = model::SystemConfig::smallTest(cores);
    return cfg;
}

const Row &
runSpec(const exp::ExperimentSpec &spec,
        const std::function<void(model::SystemConfig &)> &tweak)
{
    exp::JobOutcome outcome = exp::runJob(spec, /*maxAttempts=*/1, tweak);
    if (!outcome.ok) {
        warn("bench cell ", spec.id(), " threw: ", outcome.error);
    } else if (!outcome.result.completed) {
        warn("bench cell ", spec.id(),
             " did not complete (deadlocked=", outcome.result.deadlocked,
             ", timedOut=", outcome.result.timedOut, ")");
    }
    if (!outcome.result.violations.empty()) {
        warn("bench cell ", spec.id(), " had ",
             outcome.result.violations.size(),
             " ordering violations; first: ",
             outcome.result.violations.front());
    }
    rows().push_back(Row{spec.workload, spec.configLabel, outcome.result,
                         outcome.stats});
    outcome.index = outcomes().size();
    outcomes().push_back(std::move(outcome));
    return rows().back();
}

const Row &
runBepMicro(workload::MicroKind kind, persist::BarrierKind barrier,
            std::uint64_t opsPerThread, unsigned cores,
            std::uint64_t seed,
            const std::function<void(model::SystemConfig &)> &tweak)
{
    exp::ExperimentSpec spec;
    spec.workload = workload::toString(kind);
    spec.configLabel = persist::toString(barrier);
    spec.pm = model::PersistencyModel::BufferedEpoch;
    spec.barrier = barrier;
    spec.cores = cores;
    spec.ops = opsPerThread;
    spec.seed = seed;
    return runSpec(spec, tweak);
}

const Row &
runBspCell(const std::string &preset, model::PersistencyModel pm,
           persist::BarrierKind barrier, unsigned epochSize, bool logging,
           const std::string &configLabel, std::uint64_t opsPerThread,
           unsigned cores, std::uint64_t seed,
           const std::function<void(model::SystemConfig &)> &tweak)
{
    exp::ExperimentSpec spec;
    spec.workload = preset;
    spec.configLabel = configLabel;
    spec.pm = pm;
    spec.barrier = barrier;
    spec.epochSize = epochSize;
    spec.logging = logging;
    spec.cores = cores;
    spec.ops = opsPerThread;
    spec.seed = seed;
    return runSpec(spec, tweak);
}

double
minOfN(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return *std::min_element(xs.begin(), xs.end());
}

double
gmean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0;
    for (double x : xs)
        logSum += std::log(x);
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double
amean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

void
printTable(const std::string &title,
           const std::vector<std::string> &workloads,
           const std::vector<std::string> &configs,
           const std::function<double(const std::string &,
                                      const std::string &)> &cell,
           const std::string &meanLabel, bool useGmean)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("%-12s", "workload");
    for (const auto &c : configs)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
    std::vector<std::vector<double>> perConfig(configs.size());
    for (const auto &w : workloads) {
        std::printf("%-12s", w.c_str());
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const double v = cell(w, configs[i]);
            perConfig[i].push_back(v);
            std::printf(" %12.3f", v);
        }
        std::printf("\n");
    }
    std::printf("%-12s", meanLabel.c_str());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        std::printf(" %12.3f", useGmean ? gmean(perConfig[i])
                                        : amean(perConfig[i]));
    }
    std::printf("\n");
}

void
exportCounters(benchmark::State &state, const Row &row)
{
    state.counters["simMcycles"] =
        static_cast<double>(row.result.execTicks) / 1e6;
    state.counters["events"] =
        static_cast<double>(row.result.events);
    state.counters["txns"] =
        static_cast<double>(row.result.transactions);
    state.counters["txnPerMcycle"] = row.result.throughput();
    state.counters["violations"] =
        static_cast<double>(row.result.violations.size());
}

} // namespace persim::bench
