/**
 * @file
 * Sensitivity: NVRAM write latency vs LB++'s advantage over LB.
 *
 * The paper's Table 1 fixes the write latency at 360 cycles. This
 * ablation sweeps it: with a very fast device, flushes barely cost
 * anything and the barrier choice stops mattering; the slower the
 * device, the more LB's online flushes hurt and the more LB++ buys —
 * the qualitative argument behind the paper's motivation (§1).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace persim;
using namespace persim::bench;
using persist::BarrierKind;
using workload::MicroKind;

namespace
{

const std::vector<Tick> kLatencies = {90, 180, 360, 720, 1440};

void
cell(benchmark::State &state, Tick latency, BarrierKind barrier)
{
    const std::uint64_t ops = envOps(200);
    const unsigned cores = envCores();
    for (auto _ : state) {
        const Row &row = runBepMicro(
            MicroKind::Hash, barrier, ops, cores, envSeed(),
            [latency](model::SystemConfig &cfg) {
                cfg.nvram.writeLatency = latency;
            });
        rows().back().config = std::string(persist::toString(barrier)) +
                               "@" + std::to_string(latency);
        exportCounters(state, row);
    }
}

void
registerAll()
{
    for (Tick lat : kLatencies) {
        for (BarrierKind b : {BarrierKind::LB, BarrierKind::LBPP}) {
            std::string name = std::string("ablNvram/hash/") +
                               persist::toString(b) + "/" +
                               std::to_string(lat);
            benchmark::RegisterBenchmark(
                name.c_str(),
                [lat, b](benchmark::State &st) { cell(st, lat, b); })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::printf("\n=== NVRAM write-latency sensitivity (hash, BEP): "
                "LB++ speedup over LB ===\n");
    std::printf("%12s %14s %14s %10s\n", "writeLat(cy)", "LB txn/Mcy",
                "LB++ txn/Mcy", "speedup");
    for (Tick lat : kLatencies) {
        const Row *lb =
            findRow("hash", "LB@" + std::to_string(lat));
        const Row *pp =
            findRow("hash", "LB++@" + std::to_string(lat));
        if (!lb || !pp || lb->result.throughput() == 0)
            continue;
        std::printf("%12llu %14.1f %14.1f %9.3fx\n",
                    static_cast<unsigned long long>(lat),
                    lb->result.throughput(), pp->result.throughput(),
                    pp->result.throughput() / lb->result.throughput());
    }
    return 0;
}
