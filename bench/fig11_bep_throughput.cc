/**
 * @file
 * Figure 11: transaction throughput of the Table 2 micro-benchmarks
 * under Buffered Epoch Persistency, for LB / LB+IDT / LB+PF / LB++,
 * normalized to LB.
 *
 * Paper result: gmean +3% (LB+IDT), +17% (LB+PF), +22% (LB++) over LB.
 */

#include "bench_util.hh"

using namespace persim;
using namespace persim::bench;
using persist::BarrierKind;
using workload::MicroKind;

namespace
{

const std::vector<BarrierKind> kVariants = {
    BarrierKind::LB,
    BarrierKind::LBIDT,
    BarrierKind::LBPF,
    BarrierKind::LBPP,
};

void
bepCell(benchmark::State &state, MicroKind kind, BarrierKind barrier)
{
    const std::uint64_t ops = envOps(300);
    const unsigned cores = envCores();
    for (auto _ : state) {
        const Row &row =
            runBepMicro(kind, barrier, ops, cores, envSeed());
        exportCounters(state, row);
    }
}

void
registerAll()
{
    for (MicroKind kind : workload::allMicroKinds()) {
        for (BarrierKind barrier : kVariants) {
            std::string name = std::string("fig11/") +
                               workload::toString(kind) + "/" +
                               persist::toString(barrier);
            benchmark::RegisterBenchmark(
                name.c_str(),
                [kind, barrier](benchmark::State &st) {
                    bepCell(st, kind, barrier);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::vector<std::string> workloads;
    for (auto kind : workload::allMicroKinds())
        workloads.push_back(workload::toString(kind));
    std::vector<std::string> configs;
    for (auto b : kVariants)
        configs.push_back(persist::toString(b));

    printTable(
        "Figure 11: transaction throughput normalized to LB "
        "(higher is better)",
        workloads, configs,
        [](const std::string &w, const std::string &c) {
            const Row *row = findRow(w, c);
            const Row *base = findRow(w, "LB");
            if (!row || !base || base->result.throughput() == 0)
                return 0.0;
            return row->result.throughput() /
                   base->result.throughput();
        },
        "gmean", /*useGmean=*/true);
    return 0;
}
