/**
 * @file
 * Figure 11: transaction throughput of the Table 2 micro-benchmarks
 * under Buffered Epoch Persistency, for LB / LB+IDT / LB+PF / LB++,
 * normalized to LB.
 *
 * Paper result: gmean +3% (LB+IDT), +17% (LB+PF), +22% (LB++) over LB.
 *
 * Thin wrapper over src/exp: the grid comes from exp::figureSweep(11)
 * and the table from exp::figureTable, shared with persim_sweep.
 */

#include <iostream>

#include "bench_util.hh"
#include "exp/figures.hh"

using namespace persim;
using namespace persim::bench;

namespace
{

void
registerAll()
{
    const exp::Sweep sweep =
        exp::figureSweep(11, envOps(300), envCores(), envSeed());
    for (const exp::ExperimentSpec &spec : sweep.jobs) {
        const std::string name = spec.sweep + "/" + spec.workload + "/" +
                                 spec.configLabel;
        benchmark::RegisterBenchmark(name.c_str(),
                                     [spec](benchmark::State &st) {
                                         for (auto _ : st)
                                             exportCounters(
                                                 st, runSpec(spec));
                                     })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    exp::printFigureTable(std::cout, exp::figureTable(11, outcomes()));
    return 0;
}
