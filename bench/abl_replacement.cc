/**
 * @file
 * Ablation: LLC victim selection. LRU vs Random replacement, and the
 * effect of preferring untagged victims (avoidTaggedVictims), which
 * keeps demand misses from triggering replacement conflicts (§3.2).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace persim;
using namespace persim::bench;
using persist::BarrierKind;
using workload::MicroKind;

namespace
{

struct Config
{
    const char *label;
    cache::ReplacementPolicy policy;
    bool avoidTagged;
};

const std::vector<Config> kConfigs = {
    {"lru", cache::ReplacementPolicy::Lru, true},
    {"lru-noavoid", cache::ReplacementPolicy::Lru, false},
    {"random", cache::ReplacementPolicy::Random, true},
    {"random-noavoid", cache::ReplacementPolicy::Random, false},
};

void
cell(benchmark::State &state, const Config &cfg)
{
    const std::uint64_t ops = envOps(200);
    const unsigned cores = envCores();
    for (auto _ : state) {
        const Row &row = runBepMicro(
            MicroKind::Hash, BarrierKind::LBPP, ops, cores, envSeed(),
            [&cfg](model::SystemConfig &sys) {
                sys.llcBank.geometry.policy = cfg.policy;
                sys.l1.geometry.policy = cfg.policy;
                sys.barrier.avoidTaggedVictims = cfg.avoidTagged;
                // Shrink the LLC so capacity evictions (and therefore
                // replacement conflicts) actually occur.
                sys.llcBank.geometry.sizeBytes = 16 * 1024;
            });
        rows().back().config = cfg.label;
        exportCounters(state, row);
        state.counters["replConflicts"] =
            row.stats.count("persist.replacementConflicts")
                ? row.stats.at("persist.replacementConflicts")
                : 0;
    }
}

void
registerAll()
{
    for (const Config &cfg : kConfigs) {
        std::string name = std::string("ablReplacement/hash/") +
                           cfg.label;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [cfg](benchmark::State &st) { cell(st, cfg); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::printf("\n=== Replacement-policy ablation (hash, BEP, LB++) "
                "===\n");
    std::printf("%-16s %14s %16s\n", "config", "txn/Mcycle",
                "replConflicts");
    for (const Config &cfg : kConfigs) {
        const Row *row = findRow("hash", cfg.label);
        if (!row)
            continue;
        const double rc =
            row->stats.count("persist.replacementConflicts")
                ? row->stats.at("persist.replacementConflicts")
                : 0;
        std::printf("%-16s %14.1f %16.0f\n", cfg.label,
                    row->result.throughput(), rc);
    }
    return 0;
}
