/**
 * @file
 * Figure 14: BSP bulk-mode execution time at epoch size 10000,
 * normalized to NP, for LB / LB+IDT / LB++ / LB++NOLOG.
 *
 * Paper result: LB ~1.5x, LB+IDT ~1.35x, LB++ ~1.3x, LB++NOLOG ~1.16x;
 * ~86% of BSP conflicts are inter-thread, which is why IDT matters so
 * much more here than under BEP.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/synthetic/presets.hh"

using namespace persim;
using namespace persim::bench;
using model::PersistencyModel;
using persist::BarrierKind;

namespace
{

constexpr unsigned kEpochSize = 10000;

struct Config
{
    const char *label;
    PersistencyModel pm;
    BarrierKind barrier;
    bool logging;
};

const std::vector<Config> kConfigs = {
    {"NP", PersistencyModel::NoPersistency, BarrierKind::None, false},
    {"LB", PersistencyModel::BufferedStrict, BarrierKind::LB, true},
    {"LB+IDT", PersistencyModel::BufferedStrict, BarrierKind::LBIDT,
     true},
    {"LB++", PersistencyModel::BufferedStrict, BarrierKind::LBPP, true},
    {"LB++NOLOG", PersistencyModel::BufferedStrict, BarrierKind::LBPP,
     false},
};

void
cell(benchmark::State &state, const std::string &preset,
     const Config &cfg)
{
    const std::uint64_t ops = envOps(20000);
    const unsigned cores = envCores();
    for (auto _ : state) {
        const Row &row =
            runBspCell(preset, cfg.pm, cfg.barrier, kEpochSize,
                       cfg.logging, cfg.label, ops, cores, envSeed());
        exportCounters(state, row);
    }
}

void
registerAll()
{
    for (const auto &preset : workload::syntheticPresetNames()) {
        for (const Config &cfg : kConfigs) {
            std::string name =
                std::string("fig14/") + preset + "/" + cfg.label;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [preset, cfg](benchmark::State &st) {
                    cell(st, preset, cfg);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::vector<std::string> configs;
    for (const Config &c : kConfigs) {
        if (std::string(c.label) != "NP")
            configs.push_back(c.label);
    }
    printTable(
        "Figure 14: BSP execution time normalized to NP at epoch size "
        "10000 (lower is better)",
        workload::syntheticPresetNames(), configs,
        [](const std::string &w, const std::string &c) {
            const Row *row = findRow(w, c);
            const Row *base = findRow(w, "NP");
            if (!row || !base || base->result.execTicks == 0)
                return 0.0;
            return static_cast<double>(row->result.execTicks) /
                   static_cast<double>(base->result.execTicks);
        },
        "gmean", /*useGmean=*/true);

    // §7.2: conflict-type breakdown under LB (paper: ~86% inter-thread).
    const unsigned cores = envCores();
    double intra = 0, inter = 0, repl = 0;
    for (const auto &preset : workload::syntheticPresetNames()) {
        const Row *row = findRow(preset, "LB");
        if (!row)
            continue;
        intra += row->stats.count("persist.intraConflicts")
                     ? row->stats.at("persist.intraConflicts")
                     : 0;
        inter += row->stats.count("persist.interConflicts")
                     ? row->stats.at("persist.interConflicts")
                     : 0;
        repl += row->stats.count("persist.replacementConflicts")
                    ? row->stats.at("persist.replacementConflicts")
                    : 0;
    }
    (void)cores;
    const double total = intra + inter + repl;
    if (total > 0) {
        std::printf("\nConflict breakdown under LB (paper: ~86%% "
                    "inter-thread):\n");
        std::printf("  intra-thread: %5.1f%%\n", 100 * intra / total);
        std::printf("  inter-thread: %5.1f%%\n", 100 * inter / total);
        std::printf("  replacement:  %5.1f%%\n", 100 * repl / total);
    }
    return 0;
}
