/**
 * @file
 * Figure 14: BSP bulk-mode execution time at epoch size 10000,
 * normalized to NP, for LB / LB+IDT / LB++ / LB++NOLOG.
 *
 * Paper result: LB ~1.5x, LB+IDT ~1.35x, LB++ ~1.3x, LB++NOLOG ~1.16x;
 * ~86% of BSP conflicts are inter-thread, which is why IDT matters so
 * much more here than under BEP.
 *
 * Thin wrapper over src/exp: the grid comes from exp::figureSweep(14)
 * and the normalized table from exp::figureTable.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "exp/figures.hh"
#include "workload/synthetic/presets.hh"

using namespace persim;
using namespace persim::bench;

namespace
{

void
registerAll()
{
    const exp::Sweep sweep =
        exp::figureSweep(14, envOps(20000), envCores(), envSeed());
    for (const exp::ExperimentSpec &spec : sweep.jobs) {
        const std::string name = spec.sweep + "/" + spec.workload + "/" +
                                 spec.configLabel;
        benchmark::RegisterBenchmark(name.c_str(),
                                     [spec](benchmark::State &st) {
                                         for (auto _ : st)
                                             exportCounters(
                                                 st, runSpec(spec));
                                     })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    exp::printFigureTable(std::cout, exp::figureTable(14, outcomes()));

    // §7.2: conflict-type breakdown under LB (paper: ~86% inter-thread).
    double intra = 0, inter = 0, repl = 0;
    for (const auto &preset : workload::syntheticPresetNames()) {
        const Row *row = findRow(preset, "LB");
        if (!row)
            continue;
        intra += row->stats.count("persist.intraConflicts")
                     ? row->stats.at("persist.intraConflicts")
                     : 0;
        inter += row->stats.count("persist.interConflicts")
                     ? row->stats.at("persist.interConflicts")
                     : 0;
        repl += row->stats.count("persist.replacementConflicts")
                    ? row->stats.at("persist.replacementConflicts")
                    : 0;
    }
    const double total = intra + inter + repl;
    if (total > 0) {
        std::printf("\nConflict breakdown under LB (paper: ~86%% "
                    "inter-thread):\n");
        std::printf("  intra-thread: %5.1f%%\n", 100 * intra / total);
        std::printf("  inter-thread: %5.1f%%\n", 100 * inter / total);
        std::printf("  replacement:  %5.1f%%\n", 100 * repl / total);
    }
    return 0;
}
