/**
 * @file
 * Microbenchmarks for the workload-trace subsystem: record encode,
 * envelope validation (CRC + directory), streaming decode, the
 * capture wrapper's overhead on a live workload, and replay issue
 * rate. A fig-grid capture writes a few records per simulated memory
 * op, so encode/decode throughput bounds how much tracing costs on
 * top of a sweep; BENCH_trace.json records the end-to-end numbers.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "workload/trace/trace_capture.hh"
#include "workload/trace/trace_reader.hh"
#include "workload/trace/trace_replay.hh"
#include "workload/workload_factory.hh"

namespace
{

using namespace persim;
using namespace persim::workload::trace;

constexpr std::uint64_t kRecords = 1'000'000;

/** One thread of load/store/compute/barrier churn, kRecords long. */
TraceData
syntheticData()
{
    TraceData data;
    data.meta.name = "bench";
    data.meta.threadCount = 1;
    data.meta.seed = 1;
    data.streams.resize(1);
    auto &s = data.streams[0];
    s.reserve(kRecords);
    TraceRecord r;
    for (std::uint64_t i = 0; i + 1 < kRecords; ++i) {
        r.tick = i * 3;
        switch (i & 3) {
          case 0:
            r.kind = TraceRecord::Kind::Load;
            r.addr = 0x1000 + (i % 4096) * 64;
            break;
          case 1:
            r.kind = TraceRecord::Kind::Store;
            r.addr = 0x200000 + (i % 4096) * 64;
            break;
          case 2:
            r.kind = TraceRecord::Kind::Compute;
            r.cycles = static_cast<std::uint32_t>(20 + (i % 80));
            break;
          default:
            r.kind = TraceRecord::Kind::Barrier;
            break;
        }
        s.push_back(r);
    }
    r.kind = TraceRecord::Kind::Halt;
    r.tick = kRecords * 3;
    s.push_back(r);
    return data;
}

const TraceData &
sharedData()
{
    static const TraceData data = syntheticData();
    return data;
}

const std::string &
sharedBytes()
{
    static const std::string bytes = encodeTrace(sharedData());
    return bytes;
}

void
BM_TraceEncodeRecords(benchmark::State &state)
{
    const TraceData &data = sharedData();
    for (auto _ : state) {
        std::string out;
        for (const TraceRecord &r : data.streams[0])
            appendRecord(out, r);
        benchmark::DoNotOptimize(out.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kRecords));
}
BENCHMARK(BM_TraceEncodeRecords)->Unit(benchmark::kMillisecond);

/** Envelope validation alone: magic, header, CRCs, directory. */
void
BM_TraceReaderOpen(benchmark::State &state)
{
    const std::string &bytes = sharedBytes();
    for (auto _ : state) {
        TraceReader reader(bytes, "bench");
        benchmark::DoNotOptimize(reader.totalRecords());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_TraceReaderOpen)->Unit(benchmark::kMillisecond);

void
BM_TraceCursorDecode(benchmark::State &state)
{
    TraceReader reader(sharedBytes(), "bench");
    for (auto _ : state) {
        auto cursor = reader.stream(0);
        TraceRecord r;
        std::uint64_t n = 0;
        while (cursor.next(r))
            ++n;
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kRecords));
}
BENCHMARK(BM_TraceCursorDecode)->Unit(benchmark::kMillisecond);

/** next() issue rate of a synthetic workload, bare vs captured. */
void
issueLoop(benchmark::State &state, bool captured)
{
    std::uint64_t issued = 0;
    for (auto _ : state) {
        auto ws = workload::makeSyntheticWorkloads("canneal", 1, 20000,
                                                   1);
        std::shared_ptr<TraceCaptureWriter> writer;
        if (captured)
            writer = wrapWithCapture(ws, "bench", 1);
        Tick now = 0;
        cpu::MemOp op;
        do {
            op = ws[0]->next(now);
            now += 3;
            ++issued;
        } while (op.kind != cpu::MemOp::Kind::Halt);
        benchmark::DoNotOptimize(
            captured ? writer->totalRecords() : issued);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(issued));
}

void
BM_WorkloadIssueBare(benchmark::State &state)
{
    issueLoop(state, false);
}
BENCHMARK(BM_WorkloadIssueBare)->Unit(benchmark::kMillisecond);

void
BM_WorkloadIssueCaptured(benchmark::State &state)
{
    issueLoop(state, true);
}
BENCHMARK(BM_WorkloadIssueCaptured)->Unit(benchmark::kMillisecond);

void
BM_TraceReplayIssue(benchmark::State &state)
{
    auto reader =
        std::make_shared<const TraceReader>(sharedBytes(), "bench");
    std::uint64_t issued = 0;
    for (auto _ : state) {
        auto ws = makeTraceReplay(reader, 1);
        Tick now = 0;
        cpu::MemOp op;
        do {
            op = ws[0]->next(now);
            now += 3;
            ++issued;
        } while (op.kind != cpu::MemOp::Kind::Halt);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(issued));
}
BENCHMARK(BM_TraceReplayIssue)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
