/**
 * @file
 * Microbenchmarks for the per-op front end: the write-buffer ring and
 * its line filter against the deque+hash-set shape it replaced, the
 * integer Distribution::sample fast path against the double path, and
 * the group-arena Scalar counters against free-standing (inline)
 * counters. Every simulated memory op crosses these structures before
 * it reaches the cache hierarchy, so their constant factors multiply
 * into every figure cell; BENCH_frontend.json tracks the end-to-end
 * effect on the fig14 LB column.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cpu/write_buffer.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace
{

using persim::Addr;
using persim::Distribution;
using persim::kLineBytes;
using persim::Scalar;
using persim::StatGroup;
using persim::cpu::WriteBuffer;

constexpr std::uint64_t kOps = 1'000'000;

/** The issueStore/pumpDrain shape: push a store, snoop a line (the
 * load-forwarding probe, mostly missing), drain the oldest — over a
 * working set far larger than the buffer, as the figure workloads do. */
void
BM_WriteBufferRingChurn(benchmark::State &state)
{
    const Addr lines = 4096;
    for (auto _ : state) {
        WriteBuffer wb(32);
        std::uint64_t fwd = 0;
        for (std::uint64_t i = 0; i < kOps; ++i) {
            const Addr addr = ((i * 17) % lines) * kLineBytes;
            if (wb.full())
                wb.pop();
            wb.push(addr);
            fwd += wb.containsLine(((i * 5) % lines) * kLineBytes);
        }
        benchmark::DoNotOptimize(fwd);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kOps));
}
BENCHMARK(BM_WriteBufferRingChurn)->Unit(benchmark::kMillisecond);

/** The shape this PR replaced: a deque of entries plus a hash map of
 * per-line reference counts, one rehash/find per push/pop/snoop. */
void
BM_WriteBufferDequeMapChurn(benchmark::State &state)
{
    const Addr lines = 4096;
    struct Entry
    {
        Addr addr;
    };
    for (auto _ : state) {
        std::deque<Entry> buf;
        std::unordered_map<Addr, unsigned> lineRefs;
        std::uint64_t fwd = 0;
        auto pop = [&] {
            const Addr line = buf.front().addr;
            buf.pop_front();
            auto it = lineRefs.find(line);
            if (--it->second == 0)
                lineRefs.erase(it);
        };
        for (std::uint64_t i = 0; i < kOps; ++i) {
            const Addr addr = ((i * 17) % lines) * kLineBytes;
            if (buf.size() >= 32)
                pop();
            buf.push_back(Entry{addr});
            ++lineRefs[addr];
            fwd += lineRefs.count(((i * 5) % lines) * kLineBytes) != 0;
        }
        benchmark::DoNotOptimize(fwd);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kOps));
}
BENCHMARK(BM_WriteBufferDequeMapChurn)->Unit(benchmark::kMillisecond);

/** Tick-valued samples through the integer fast path (header-inlined,
 * bit_width bucket selection). */
void
BM_DistributionSampleU64(benchmark::State &state)
{
    Distribution d(nullptr, "lat", "latency");
    std::uint64_t v = 1;
    for (auto _ : state) {
        v = v * 6364136223846793005ULL + 1442695040888963407ULL;
        d.sample(v >> 40); // ~tick-sized values
    }
    benchmark::DoNotOptimize(d.count());
}
BENCHMARK(BM_DistributionSampleU64);

/** The same samples through the double path (frexp-style bucketing). */
void
BM_DistributionSampleDouble(benchmark::State &state)
{
    Distribution d(nullptr, "lat", "latency");
    std::uint64_t v = 1;
    for (auto _ : state) {
        v = v * 6364136223846793005ULL + 1442695040888963407ULL;
        d.sample(static_cast<double>(v >> 40));
    }
    benchmark::DoNotOptimize(d.count());
}
BENCHMARK(BM_DistributionSampleDouble);

/** Round-robin bumps over a component's worth of group-registered
 * counters: the arena packs them into a few host cache lines. */
void
BM_ScalarArenaBump(benchmark::State &state)
{
    StatGroup g("bench");
    std::vector<std::unique_ptr<Scalar>> stats;
    for (int i = 0; i < 16; ++i)
        stats.push_back(std::make_unique<Scalar>(
            &g, "s" + std::to_string(i), "counter"));
    unsigned i = 0;
    for (auto _ : state) {
        ++*stats[i & 15];
        ++i;
    }
    benchmark::DoNotOptimize(stats[0]->value());
}
BENCHMARK(BM_ScalarArenaBump);

/** The layout the arena replaced: each counter inline in its own
 * string-heavy Scalar object, one cache line (or two) apart. */
void
BM_ScalarFreeStandingBump(benchmark::State &state)
{
    std::vector<std::unique_ptr<Scalar>> stats;
    for (int i = 0; i < 16; ++i)
        stats.push_back(std::make_unique<Scalar>(
            nullptr, "s" + std::to_string(i), "counter"));
    unsigned i = 0;
    for (auto _ : state) {
        ++*stats[i & 15];
        ++i;
    }
    benchmark::DoNotOptimize(stats[0]->value());
}
BENCHMARK(BM_ScalarFreeStandingBump);

} // namespace

BENCHMARK_MAIN();
