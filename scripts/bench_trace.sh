#!/usr/bin/env bash
# Regenerate BENCH_trace.json: trace subsystem end-to-end numbers.
#
# Three measurements, all over the Figure 11 micro grid (5 workloads x
# 4 configs, 32 cores):
#   - baseline:  the sweep with no tracing (reference wall-clock)
#   - capture:   the same sweep with --capture-dir (capture overhead)
#   - replay:    the same sweep replayed from the captured traces
# plus the bench_trace microbenchmark suite (encode / validate /
# decode / capture-wrapper / replay issue rates).
#
# The three sweeps' --no-stats JSON must be byte-identical — capture
# must not perturb the run and replay must reproduce it exactly — so
# the script enforces that before reporting any timing.
#
# Usage: scripts/bench_trace.sh [build-dir] [out-file]
set -euo pipefail

build=${1:-build}
out=${2:-BENCH_trace.json}
reps=${REPS:-3}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

sweep="$build/tools/persim_sweep"
bench="$build/bench/bench_trace"
[ -x "$sweep" ] || { echo "error: $sweep not built" >&2; exit 1; }
[ -x "$bench" ] || { echo "error: $bench not built" >&2; exit 1; }

common=(--figure 11 --jobs 1 --quiet --no-stats)

run_mode() { # run_mode <tag> [extra args...]
    local tag=$1 i; shift
    for i in $(seq 1 "$reps"); do
        echo "[$tag] fig11 grid, rep $i/$reps ..." >&2
        "$sweep" "${common[@]}" "$@" \
            --out "$tmp/$tag.$i.json" \
            --timing-out "$tmp/$tag.$i.timing.json" >/dev/null
        cmp -s "$tmp/$tag.1.json" "$tmp/$tag.$i.json" \
            || { echo "error: rep $i output differs (nondeterminism)" >&2
                 exit 1; }
    done
}

run_mode baseline
run_mode capture --capture-dir "$tmp/traces"
run_mode replay --replay-dir "$tmp/traces"

cmp -s "$tmp/baseline.1.json" "$tmp/capture.1.json" \
    || { echo "error: capture perturbed the sweep output" >&2; exit 1; }
cmp -s "$tmp/baseline.1.json" "$tmp/replay.1.json" \
    || { echo "error: replay diverged from the captured run" >&2
         exit 1; }
echo "capture -> replay round trip: byte-identical output" >&2

echo "[micro] bench_trace ..." >&2
"$bench" --benchmark_format=json \
    --benchmark_out="$tmp/micro.json" >/dev/null

traceBytes=$(du -sk "$tmp/traces" | cut -f1)

export BENCH_LIB
BENCH_LIB=$(cd "$(dirname "$0")" && pwd)
python3 - "$tmp" "$out" "$reps" "$traceBytes" <<'EOF'
import json, os, sys

sys.path.insert(0, os.environ["BENCH_LIB"])
import bench_lib

tmp, out, reps, trace_kb = (sys.argv[1], sys.argv[2], int(sys.argv[3]),
                            int(sys.argv[4]))

def wall(tag):
    return bench_lib.min_wall(tmp, tag, reps)

base, cap, rep = wall("baseline"), wall("capture"), wall("replay")
micro = json.load(open(os.path.join(tmp, "micro.json")))
rates = {}
for b in micro.get("benchmarks", []):
    if "items_per_second" in b:
        rates[b["name"]] = round(b["items_per_second"] / 1e6, 2)
    elif "bytes_per_second" in b:
        rates[b["name"]] = round(b["bytes_per_second"] / 1e6, 2)

doc = {
    "benchmark": "persim_sweep --figure 11 (5 micros x 4 configs, "
                 "32 cores) bare / captured / replayed",
    "reps": reps,
    "metric": "min wall-clock over reps; microbench M items (or MB)/s",
    "hostCpus": os.cpu_count(),
    "roundTripByteIdentical": True,
    "baselineWallMs": round(base, 1),
    "captureWallMs": round(cap, 1),
    "captureOverhead": round(cap / base, 3),
    "replayWallMs": round(rep, 1),
    "replayVsBaseline": round(rep / base, 3),
    "capturedTraceKb": trace_kb,
    "microMPerSec": rates,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
EOF

# Host-time profile regression gate: re-profile the same grid and
# persim_prof-diff it against the baseline's profile (no-op without
# BASELINE_BUILD; PROF_GATE=0 skips, PROF_GATE_PP tunes the threshold).
"$(dirname "$0")/prof_gate.sh" "$build" "${out%.json}" -- \
    --figure 11 --jobs 1
