#!/usr/bin/env bash
# Regenerate BENCH_sweep.json: the fig11-grid orchestrator benchmark.
#
# Runs the full Figure 11 grid through persim_sweep serially and with 8
# workers, verifies the two JSON outputs are byte-identical (the
# determinism contract), and records wall-clock + speedup together with
# the host's CPU budget. Speedup is bounded by min(8, host CPUs, 20
# jobs); on a single-CPU host expect ~1.0.
#
# Usage: scripts/bench_sweep.sh [build-dir] [out-file]
set -euo pipefail

build=${1:-build}
out=${2:-BENCH_sweep.json}
sweep="$build/tools/persim_sweep"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

[ -x "$sweep" ] || { echo "error: $sweep not built" >&2; exit 1; }

echo "fig11 grid, --jobs 1 ..." >&2
"$sweep" --figure 11 --jobs 1 --quiet \
    --out "$tmp/j1.json" --timing-out "$tmp/t1.json" >/dev/null

echo "fig11 grid, --jobs 8 ..." >&2
"$sweep" --figure 11 --jobs 8 --quiet \
    --out "$tmp/j8.json" --timing-out "$tmp/t8.json" >/dev/null

if cmp -s "$tmp/j1.json" "$tmp/j8.json"; then
    deterministic=true
else
    deterministic=false
fi

export BENCH_LIB
BENCH_LIB=$(cd "$(dirname "$0")" && pwd)
python3 - "$tmp" "$out" "$deterministic" <<'EOF'
import json, os, sys

sys.path.insert(0, os.environ["BENCH_LIB"])
import bench_lib

tmp, out, deterministic = sys.argv[1], sys.argv[2], sys.argv[3] == "true"
t1 = json.load(open(os.path.join(tmp, "t1.json")))
t8 = json.load(open(os.path.join(tmp, "t8.json")))
doc = {
    "benchmark": "persim_sweep --figure 11 (full grid, 32 cores, 300 ops)",
    "jobCount": t1["jobCount"],
    "deterministic_j1_vs_j8": deterministic,
    "wallMs_jobs1": round(t1["wallMs"], 1),
    "wallMs_jobs8": round(t8["wallMs"], 1),
    "speedup_jobs8": round(t1["wallMs"] / t8["wallMs"], 3),
    "note": "speedup is bounded by min(8, hostCpus, jobCount); "
            "a 1-CPU host yields ~1.0 by construction",
}
bench_lib.emit(out, doc, reps=1)
EOF

$deterministic || { echo "error: sweep output not deterministic!" >&2; exit 1; }

# Host-time profile regression gate: re-profile the same grid and
# persim_prof-diff it against the baseline's profile (no-op without
# BASELINE_BUILD; PROF_GATE=0 skips, PROF_GATE_PP tunes the threshold).
"$(dirname "$0")/prof_gate.sh" "$build" "${out%.json}" -- \
    --figure 11 --jobs 1
