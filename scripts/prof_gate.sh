#!/usr/bin/env bash
# Host-time profile regression gate for the bench_* scripts.
#
# Profiles one representative sweep cell with the current build
# (--prof-out) and, when BASELINE_BUILD is set, with the baseline
# binary too, then runs
#
#   persim_prof diff <before> <after> --threshold ${PROF_GATE_PP:-10}
#
# so any phase whose share of host samples moved by more than the
# threshold (percentage points) fails the bench with nonzero exit —
# the regression gate the ROADMAP's profiling item left open. Without
# BASELINE_BUILD there is nothing to diff against: the current profile
# is still captured (copied next to the bench output for the record)
# and the gate passes.
#
# Knobs:
#   PROF_GATE=0       skip entirely (required for -pg builds, where
#                     gprof owns ITIMER_PROF)
#   PROF_GATE_PP=N    threshold in percentage points (default 10)
#
# Usage: prof_gate.sh <build-dir> <out-prefix> -- <persim_sweep args...>
set -euo pipefail

if [ "${PROF_GATE:-1}" = "0" ]; then
    echo "[prof-gate] disabled (PROF_GATE=0)" >&2
    exit 0
fi

build=$1
prefix=$2
shift 2
[ "${1:-}" = "--" ] && shift

find_sweep() { # find_sweep <build-dir-or-binary>
    if [ -x "$1/tools/persim_sweep" ]; then echo "$1/tools/persim_sweep"
    elif [ -x "$1/persim_sweep" ]; then echo "$1/persim_sweep"
    else echo "$1"; fi
}

sweep=$(find_sweep "$build")
prof_tool="$build/tools/persim_prof"
threshold=${PROF_GATE_PP:-10}

if [ ! -x "$prof_tool" ]; then
    echo "[prof-gate] $prof_tool not built; skipping" >&2
    exit 0
fi

echo "[prof-gate] profiling current build ..." >&2
"$sweep" "$@" --quiet --no-stats --out "$prefix.sweep.json" \
    --prof-out "$prefix.after.json" >/dev/null
rm -f "$prefix.sweep.json" "$prefix.sweep.json.journal"

if [ -z "${BASELINE_BUILD:-}" ]; then
    echo "[prof-gate] no BASELINE_BUILD: captured $prefix.after.json," \
         "nothing to diff" >&2
    exit 0
fi

base_sweep=$(find_sweep "$BASELINE_BUILD")
echo "[prof-gate] profiling baseline build ..." >&2
if ! "$base_sweep" "$@" --quiet --no-stats \
    --out "$prefix.base_sweep.json" \
    --prof-out "$prefix.before.json" >/dev/null 2>&1; then
    echo "[prof-gate] baseline does not support --prof-out;" \
         "skipping diff" >&2
    rm -f "$prefix.base_sweep.json" "$prefix.base_sweep.json.journal"
    exit 0
fi
rm -f "$prefix.base_sweep.json" "$prefix.base_sweep.json.journal"

echo "[prof-gate] persim_prof diff (threshold ${threshold}pp) ..." >&2
if ! "$prof_tool" diff "$prefix.before.json" "$prefix.after.json" \
    --threshold "$threshold"; then
    echo "error: a phase's host-time share moved by more than" \
         "${threshold}pp vs the baseline (profiles kept at" \
         "$prefix.{before,after}.json)" >&2
    exit 1
fi
echo "[prof-gate] ok: no phase moved more than ${threshold}pp" >&2
