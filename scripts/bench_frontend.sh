#!/usr/bin/env bash
# Regenerate BENCH_frontend.json: the per-op front-end benchmark.
#
# Times the Figure 14 LB column (9 workloads x LB config, 32 cores,
# 20000 ops — every op crosses the core issue loop, write buffer, L1
# access path, and epoch-tagging handshake this benchmark tracks)
# through persim_sweep, REPS repetitions, reporting the minimum
# wall-clock. Byte-compares the --no-stats JSON across repetitions —
# and, when a baseline is given, across binaries — because the
# front-end fast paths must not change simulated behaviour, only host
# time. Also runs the bench_frontend microbenchmarks (write-buffer
# ring vs deque+map, integer vs double Distribution::sample, arena vs
# free-standing Scalar bumps) when the binary is built.
#
# To record a before/after pair, point BASELINE_BUILD at a build of the
# pre-change tree (its persim_sweep must support --only and
# --timing-out); the script times both binaries back to back and
# computes the speedup. Without BASELINE_BUILD only the current build
# is timed.
#
# Usage: [BASELINE_BUILD=path] scripts/bench_frontend.sh [build-dir] [out-file]
set -euo pipefail

build=${1:-build}
out=${2:-BENCH_frontend.json}
reps=${REPS:-3}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

find_sweep() { # find_sweep <build-dir-or-binary>
    if [ -x "$1/tools/persim_sweep" ]; then echo "$1/tools/persim_sweep"
    elif [ -x "$1/persim_sweep" ]; then echo "$1/persim_sweep"
    else echo "$1"; fi
}

run_rep() { # run_rep <build-dir-or-binary> <tag> <rep>
    local sweep tag=$2 i=$3
    sweep=$(find_sweep "$1")
    [ -x "$sweep" ] || { echo "error: $sweep not built" >&2; exit 1; }
    echo "[$tag] fig14 LB column, rep $i/$reps ..." >&2
    "$sweep" --figure 14 --only /LB/ --jobs 1 --quiet --no-stats \
        --out "$tmp/$tag.$i.json" \
        --timing-out "$tmp/$tag.$i.timing.json" >/dev/null
    cmp -s "$tmp/$tag.1.json" "$tmp/$tag.$i.json" \
        || { echo "error: rep $i output differs (nondeterminism)" >&2
             exit 1; }
}

# Reps interleave after/before so slow host drift (thermal, noisy
# neighbours) hits both binaries alike instead of one block.
for i in $(seq 1 "$reps"); do
    run_rep "$build" after "$i"
    [ -n "${BASELINE_BUILD:-}" ] && run_rep "$BASELINE_BUILD" before "$i"
done
if [ -n "${BASELINE_BUILD:-}" ]; then
    cmp -s "$tmp/after.1.json" "$tmp/before.1.json" \
        || { echo "error: baseline output differs (behaviour change)" >&2
             exit 1; }
fi

micro="$build/bench/bench_frontend"
if [ -x "$micro" ]; then
    echo "[micro] bench_frontend ..." >&2
    "$micro" --benchmark_format=json \
        --benchmark_out="$tmp/micro.json" >/dev/null
fi

export BENCH_LIB
BENCH_LIB=$(cd "$(dirname "$0")" && pwd)
python3 - "$tmp" "$out" "$reps" <<'EOF'
import json, os, sys

sys.path.insert(0, os.environ["BENCH_LIB"])
import bench_lib

tmp, out, reps = sys.argv[1], sys.argv[2], int(sys.argv[3])

after = bench_lib.min_wall(tmp, "after", reps)
before = bench_lib.min_wall(tmp, "before", reps)
doc = {
    "benchmark": "persim_sweep --figure 14 --only /LB/ "
                 "(9 workloads x LB, 32 cores, 20000 ops, --jobs 1)",
    "metric": "min wall-clock over reps",
    "wallMs": round(after, 1),
}
if before is not None:
    doc["baselineWallMs"] = round(before, 1)
    doc["speedup"] = round(before / after, 3)

micro_path = os.path.join(tmp, "micro.json")
if os.path.exists(micro_path):
    micro = json.load(open(micro_path))
    times = {}
    for b in micro.get("benchmarks", []):
        if "real_time" in b:
            times[b["name"]] = round(b["real_time"], 1)
    doc["microNs"] = times
bench_lib.emit(out, doc, reps=reps)
EOF

# Host-time profile regression gate: re-profile the same cell and
# persim_prof-diff it against the baseline's profile (no-op without
# BASELINE_BUILD; PROF_GATE=0 skips, PROF_GATE_PP tunes the threshold).
"$(dirname "$0")/prof_gate.sh" "$build" "${out%.json}" -- \
    --figure 14 --only /LB/ --jobs 1
