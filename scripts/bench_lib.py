"""Shared emitter for the scripts/bench_*.sh result files.

Every BENCH_*.json carries the same envelope — ``hostCpus``, ``reps``,
``gitSha`` — so results from different machines and commits can be
compared without archaeology, and the min-of-N wall-clock reduction
lives in one place instead of drifting per script.

The bash scripts export ``BENCH_LIB=<scripts dir>`` and their embedded
python does::

    sys.path.insert(0, os.environ["BENCH_LIB"])
    import bench_lib

``emit(out, doc, reps=...)`` stamps the envelope and writes/prints the
JSON; ``min_wall``/``collect`` reduce per-repetition --timing-out files.
"""

import json
import os
import subprocess


def git_sha():
    """The repo HEAD at measurement time (None outside a checkout)."""
    try:
        p = subprocess.run(
            ["git", "-C", os.path.dirname(os.path.abspath(__file__)),
             "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=10)
        sha = p.stdout.strip()
        return sha if p.returncode == 0 and sha else None
    except OSError:
        return None


def collect(tmp, tag, reps):
    """Min-of-N over ``<tmp>/<tag>.<i>.timing.json``.

    Returns ``{"wallMs": min, "peakRssKb": min-or-None}`` or None when
    the first repetition file is missing (e.g. no BASELINE_BUILD).
    """
    walls, rss = [], []
    for i in range(1, reps + 1):
        path = os.path.join(tmp, f"{tag}.{i}.timing.json")
        if not os.path.exists(path):
            return None
        with open(path) as f:
            t = json.load(f)
        walls.append(t["wallMs"])
        if "peakRssKb" in t:
            rss.append(t["peakRssKb"])
    return {"wallMs": min(walls), "peakRssKb": min(rss) if rss else None}


def min_wall(tmp, tag, reps):
    """Just the min wall-clock (ms) of ``collect``, or None."""
    c = collect(tmp, tag, reps)
    return None if c is None else c["wallMs"]


def emit(out, doc, reps=None):
    """Stamp the standard envelope onto ``doc``, write and print it."""
    doc.setdefault("hostCpus", os.cpu_count())
    if reps is not None:
        doc.setdefault("reps", reps)
    doc.setdefault("gitSha", git_sha())
    with open(out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(json.dumps(doc, indent=2))
