#!/bin/sh
# Build, test, and regenerate every paper figure/ablation, recording the
# outputs the repository documents (test_output.txt, bench_output.txt).
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
: > bench_output.txt
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "==== $b ====" | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
done
