#!/usr/bin/env bash
# Regenerate BENCH_llc.json: the LLC-bank hot-path benchmark.
#
# Times the Figure 14 LB column (9 workloads x LB config, 32 cores,
# 20000 ops — the heaviest eviction/flush traffic in the figure grid)
# through persim_sweep, 3 repetitions, reporting the minimum wall-clock
# and the peak RSS from --timing-out. Byte-compares the --no-stats JSON
# across repetitions — and, when a baseline is given, across binaries —
# because the flattened bank structures must not change simulated
# behaviour, only host time and footprint.
#
# To record a before/after pair, point BASELINE_BUILD at a build of the
# pre-change tree (its persim_sweep must support --only and
# --timing-out); the script times both binaries back to back and
# computes the speedup and RSS ratio. Without BASELINE_BUILD only the
# current build is timed.
#
# Usage: [BASELINE_BUILD=path] scripts/bench_llc.sh [build-dir] [out-file]
set -euo pipefail

build=${1:-build}
out=${2:-BENCH_llc.json}
reps=${REPS:-3}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

find_sweep() { # find_sweep <build-dir-or-binary>
    if [ -x "$1/tools/persim_sweep" ]; then echo "$1/tools/persim_sweep"
    elif [ -x "$1/persim_sweep" ]; then echo "$1/persim_sweep"
    else echo "$1"; fi
}

run_cell() { # run_cell <build-dir-or-binary> <tag>
    local sweep tag=$2 i
    sweep=$(find_sweep "$1")
    [ -x "$sweep" ] || { echo "error: $sweep not built" >&2; exit 1; }
    for i in $(seq 1 "$reps"); do
        echo "[$tag] fig14 LB column, rep $i/$reps ..." >&2
        "$sweep" --figure 14 --only /LB/ --jobs 1 --quiet --no-stats \
            --out "$tmp/$tag.$i.json" \
            --timing-out "$tmp/$tag.$i.timing.json" >/dev/null
        cmp -s "$tmp/$tag.1.json" "$tmp/$tag.$i.json" \
            || { echo "error: rep $i output differs (nondeterminism)" >&2
                 exit 1; }
    done
}

run_cell "$build" after
if [ -n "${BASELINE_BUILD:-}" ]; then
    run_cell "$BASELINE_BUILD" before
    cmp -s "$tmp/after.1.json" "$tmp/before.1.json" \
        || { echo "error: baseline output differs (behaviour change)" >&2
             exit 1; }
fi

export BENCH_LIB
BENCH_LIB=$(cd "$(dirname "$0")" && pwd)
python3 - "$tmp" "$out" "$reps" <<'EOF'
import os, sys

sys.path.insert(0, os.environ["BENCH_LIB"])
import bench_lib

tmp, out, reps = sys.argv[1], sys.argv[2], int(sys.argv[3])

after = bench_lib.collect(tmp, "after", reps)
before = bench_lib.collect(tmp, "before", reps)
doc = {
    "benchmark": "persim_sweep --figure 14 --only /LB/ "
                 "(9 workloads x LB, 32 cores, 20000 ops, --jobs 1)",
    "metric": "min wall-clock / min peak RSS over reps",
    "wallMs": round(after["wallMs"], 1),
}
if after["peakRssKb"] is not None:
    doc["peakRssKb"] = after["peakRssKb"]
if before is not None:
    doc["baselineWallMs"] = round(before["wallMs"], 1)
    doc["speedup"] = round(before["wallMs"] / after["wallMs"], 3)
    if before["peakRssKb"] and after["peakRssKb"]:
        doc["baselinePeakRssKb"] = before["peakRssKb"]
        doc["rssRatio"] = round(
            after["peakRssKb"] / before["peakRssKb"], 3)
bench_lib.emit(out, doc, reps=reps)
EOF

# Host-time profile regression gate: re-profile the same cell and
# persim_prof-diff it against the baseline's profile (no-op without
# BASELINE_BUILD; PROF_GATE=0 skips, PROF_GATE_PP tunes the threshold).
"$(dirname "$0")/prof_gate.sh" "$build" "${out%.json}" -- \
    --figure 14 --only /LB/ --jobs 1
