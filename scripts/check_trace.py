#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by persim_sweep.

Checks the invariants Perfetto relies on:
  1. the file is valid JSON with a traceEvents array;
  2. every B event has a stack-matching E event on its (pid, tid) lane;
  3. timestamps are non-decreasing per lane (B/E/X) and strictly
     increasing per counter track (C), tracks keyed by (pid, name);
  4. every C event carries a non-empty args object whose values are
     all numeric (Perfetto silently drops anything else);
  5. optionally, that named counter tracks and span-name prefixes are
     present (--require-counter / --require-span).

Exit status is 0 when every check passes, 1 otherwise.

Usage:
  scripts/check_trace.py trace.json \
      --require-counter epochsInFlight --require-counter nvmQueueDepth \
      --require-span "epoch " --require-span execute
"""

import argparse
import json
import sys
from collections import defaultdict


def check(path, require_counters, require_spans):
    errors = []
    with open(path) as fh:
        doc = json.load(fh)

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]

    stacks = defaultdict(list)  # (pid, tid) -> [B names]
    lane_ts = {}  # (pid, tid) -> last ts
    counter_ts = {}  # (pid, counter name) -> last ts
    counters_seen = set()
    span_names = set()

    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue
        key = (ev.get("pid"), ev.get("tid"))
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"event {i}: missing/invalid ts: {ev}")
            continue

        if ph in ("B", "E", "X", "i"):
            last = lane_ts.get(key)
            if last is not None and ts < last:
                errors.append(
                    f"event {i}: ts {ts} < {last} on lane {key}")
            lane_ts[key] = ts

        if ph == "B":
            stacks[key].append(ev.get("name"))
            span_names.add(ev.get("name", ""))
        elif ph == "E":
            if not stacks[key]:
                errors.append(f"event {i}: E without open B on {key}")
            elif stacks[key][-1] != ev.get("name"):
                errors.append(
                    f"event {i}: E '{ev.get('name')}' does not match "
                    f"open B '{stacks[key][-1]}' on lane {key}")
            else:
                stacks[key].pop()
        elif ph == "X":
            span_names.add(ev.get("name", ""))
            if not isinstance(ev.get("dur"), (int, float)):
                errors.append(f"event {i}: X without dur: {ev}")
        elif ph == "C":
            name = ev.get("name")
            counters_seen.add(name)
            track = (ev.get("pid"), name)
            last = counter_ts.get(track)
            if last is not None and ts <= last:
                errors.append(
                    f"event {i}: counter '{name}' ts {ts} <= {last}"
                    f" on pid {ev.get('pid')}")
            counter_ts[track] = ts
            args_obj = ev.get("args")
            if not isinstance(args_obj, dict) or not args_obj:
                errors.append(
                    f"event {i}: counter '{name}' without args object")
            else:
                for k, v in args_obj.items():
                    if not isinstance(v, (int, float)) or isinstance(
                            v, bool):
                        errors.append(
                            f"event {i}: counter '{name}' arg "
                            f"'{k}' is not numeric: {v!r}")

    for key, stack in stacks.items():
        if stack:
            errors.append(f"lane {key}: unclosed B events: {stack}")

    for name in require_counters:
        if name not in counters_seen:
            errors.append(f"required counter track missing: {name}")
    for prefix in require_spans:
        if not any(n.startswith(prefix) for n in span_names):
            errors.append(f"no span name starts with: {prefix!r}")

    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace JSON file")
    ap.add_argument("--require-counter", action="append", default=[],
                    help="fail unless this ph:C track exists")
    ap.add_argument("--require-span", action="append", default=[],
                    help="fail unless a span name starts with this")
    args = ap.parse_args()

    errors = check(args.trace, args.require_counter, args.require_span)
    if errors:
        for e in errors[:20]:
            print(f"check_trace: {e}", file=sys.stderr)
        if len(errors) > 20:
            print(f"check_trace: ... and {len(errors) - 20} more",
                  file=sys.stderr)
        return 1
    print(f"check_trace: {args.trace} OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
