#!/usr/bin/env bash
# Regenerate BENCH_hotpath.json: the simulation-kernel hot-path benchmark.
#
# Times the Figure 14 LB column (9 workloads x LB config, 32 cores,
# 20000 ops — the cell the ISSUE's hot-path work targets) through
# persim_sweep, 3 repetitions, reporting the minimum wall-clock. Also
# verifies the output is byte-identical across repetitions (the
# determinism contract the kernel changes must preserve).
#
# To record a before/after pair, point BASELINE_BUILD at a build of the
# pre-change tree (its persim_sweep must support --only); the script
# then times both binaries on the same host back to back and computes
# the speedup. Without BASELINE_BUILD only the current build is timed.
#
# Usage: [BASELINE_BUILD=path] scripts/bench_hotpath.sh [build-dir] [out-file]
set -euo pipefail

build=${1:-build}
out=${2:-BENCH_hotpath.json}
reps=${REPS:-3}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

run_cell() { # run_cell <sweep-binary> <tag>
    local sweep=$1 tag=$2 i
    [ -x "$sweep" ] || { echo "error: $sweep not built" >&2; exit 1; }
    for i in $(seq 1 "$reps"); do
        echo "[$tag] fig14 LB column, rep $i/$reps ..." >&2
        "$sweep" --figure 14 --only /LB/ --jobs 1 --quiet --no-stats \
            --out "$tmp/$tag.$i.json" \
            --timing-out "$tmp/$tag.$i.timing.json" >/dev/null
        cmp -s "$tmp/$tag.1.json" "$tmp/$tag.$i.json" \
            || { echo "error: rep $i output differs (nondeterminism)" >&2
                 exit 1; }
    done
}

run_cell "$build/tools/persim_sweep" after
if [ -n "${BASELINE_BUILD:-}" ]; then
    run_cell "$BASELINE_BUILD/tools/persim_sweep" before
fi

export BENCH_LIB
BENCH_LIB=$(cd "$(dirname "$0")" && pwd)
python3 - "$tmp" "$out" "$reps" <<'EOF'
import os, sys

sys.path.insert(0, os.environ["BENCH_LIB"])
import bench_lib

tmp, out, reps = sys.argv[1], sys.argv[2], int(sys.argv[3])

after = bench_lib.min_wall(tmp, "after", reps)
before = bench_lib.min_wall(tmp, "before", reps)
doc = {
    "benchmark": "persim_sweep --figure 14 --only /LB/ "
                 "(9 workloads x LB, 32 cores, 20000 ops, --jobs 1)",
    "metric": "min wall-clock over reps",
    "wallMs": round(after, 1),
}
if before is not None:
    doc["baselineWallMs"] = round(before, 1)
    doc["speedup"] = round(before / after, 3)
bench_lib.emit(out, doc, reps=reps)
EOF

# Host-time profile regression gate: re-profile the same cell and
# persim_prof-diff it against the baseline's profile (no-op without
# BASELINE_BUILD; PROF_GATE=0 skips, PROF_GATE_PP tunes the threshold).
"$(dirname "$0")/prof_gate.sh" "$build" "${out%.json}" -- \
    --figure 14 --only /LB/ --jobs 1
