/**
 * @file
 * Buffered Strict Persistency in bulk mode (§5.2): transparent
 * whole-program checkpointing of an unmodified multi-threaded
 * application.
 *
 * The "application" is the ssca2 stand-in (write-intensive, fine-grained
 * sharing — the paper's stress case). The hardware persistence engine
 * slices execution into epochs of N dynamic stores, undo-logs first
 * writes, checkpoints register state per epoch, and the LB++ barrier
 * keeps persists off the critical path. The example contrasts LB and
 * LB++ overheads against a No-Persistency run — Figure 14 in miniature.
 *
 *   $ ./examples/checkpoint_bsp [opsPerThread] [epochSize]
 */

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "model/system.hh"
#include "workload/workload_factory.hh"

using namespace persim;

namespace
{

model::SimResult
runOnce(model::PersistencyModel pm, persist::BarrierKind bk,
        std::uint64_t ops, unsigned epochSize, double *logWrites,
        double *checkpointLines)
{
    model::SystemConfig cfg = model::SystemConfig::paperTable1();
    applyPersistencyModel(cfg, pm, bk, epochSize);
    model::System sys(cfg);
    auto workloads = workload::makeSyntheticWorkloads(
        "ssca2", cfg.numCores, ops, /*seed=*/7);
    for (unsigned t = 0; t < cfg.numCores; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));
    model::SimResult res = sys.run();
    auto stats = sys.stats();
    if (logWrites) {
        *logWrites = 0;
        *checkpointLines = 0;
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            *logWrites += stats["persist.arbiter[" + std::to_string(c) +
                                ".logWrites"];
            *checkpointLines +=
                stats["persist.arbiter[" + std::to_string(c) +
                      ".checkpointLines"];
        }
    }
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t ops = argc > 1 ? std::atoll(argv[1]) : 5000;
    const unsigned epochSize =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 1000;
    try {
        std::printf("BSP bulk-mode checkpointing of 'ssca2' (%llu "
                    "ops/thread, %u-store epochs)\n",
                    static_cast<unsigned long long>(ops), epochSize);

        model::SimResult np =
            runOnce(model::PersistencyModel::NoPersistency,
                    persist::BarrierKind::None, ops, 0, nullptr,
                    nullptr);
        std::printf("NP baseline:    %8.3f Mcycles\n",
                    np.execTicks / 1e6);

        double logs = 0, ckpts = 0;
        model::SimResult lb =
            runOnce(model::PersistencyModel::BufferedStrict,
                    persist::BarrierKind::LB, ops, epochSize, &logs,
                    &ckpts);
        std::printf("BSP with LB:    %8.3f Mcycles  (%.2fx NP)\n",
                    lb.execTicks / 1e6,
                    double(lb.execTicks) / double(np.execTicks));

        model::SimResult pp =
            runOnce(model::PersistencyModel::BufferedStrict,
                    persist::BarrierKind::LBPP, ops, epochSize, &logs,
                    &ckpts);
        std::printf("BSP with LB++:  %8.3f Mcycles  (%.2fx NP)\n",
                    pp.execTicks / 1e6,
                    double(pp.execTicks) / double(np.execTicks));
        std::printf("  undo-log line writes:   %.0f\n", logs);
        std::printf("  checkpointed reg lines: %.0f\n", ckpts);
        std::printf("  ordering violations:    %zu\n",
                    pp.violations.size());

        const bool ok = np.completed && lb.completed && pp.completed &&
                        pp.violations.empty();
        std::printf("%s\n", ok ? "OK" : "FAILED");
        return ok ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
