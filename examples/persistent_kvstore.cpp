/**
 * @file
 * A persistent key-value store under Buffered Epoch Persistency, with a
 * crash-consistency demonstration.
 *
 * The example runs the hash-table workload (a KV store: 512B values in
 * per-bucket chains, barriers ordering value-then-publish as in Figure
 * 10), records the full durable-write log, then "crashes" the machine
 * at an arbitrary instant and shows that the persisted state is
 * prefix-closed over epochs: for every line that reached NVRAM, every
 * happens-before-earlier epoch is fully durable — so recovery code
 * would never observe a published pointer whose value is missing.
 *
 *   $ ./examples/persistent_kvstore [opsPerThread] [crashPercent]
 */

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "model/recovery.hh"
#include "model/system.hh"
#include "workload/workload_factory.hh"

using namespace persim;

int
main(int argc, char **argv)
{
    const std::uint64_t ops = argc > 1 ? std::atoll(argv[1]) : 100;
    const unsigned crashPct =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 60;
    try {
        model::SystemConfig cfg = model::SystemConfig::paperTable1();
        applyPersistencyModel(cfg,
                              model::PersistencyModel::BufferedEpoch,
                              persist::BarrierKind::LBPP);
        cfg.keepPersistLog = true; // record every durable write

        model::System sys(cfg);
        workload::MicroConfig mc;
        mc.kind = workload::MicroKind::Hash;
        mc.numThreads = cfg.numCores;
        mc.opsPerThread = ops;
        auto workloads = workload::makeMicroWorkloads(mc);
        for (unsigned t = 0; t < cfg.numCores; ++t)
            sys.setWorkload(static_cast<CoreId>(t),
                            std::move(workloads[t]));

        model::SimResult res = sys.run();
        std::printf("KV store ran %llu transactions in %.2f Mcycles "
                    "(%zu live ordering violations)\n",
                    static_cast<unsigned long long>(res.transactions),
                    res.execTicks / 1e6, res.violations.size());

        const auto &log = sys.checker()->log();
        std::printf("durable-write log: %zu entries\n", log.size());

        // Simulate a crash at crashPct% of the persist stream (plus the
        // edges) and report the recovery point per core.
        model::RecoveryAnalysis ra(log, cfg.numCores);
        bool allOk = true;
        for (std::size_t cut :
             {std::size_t{0}, log.size() * crashPct / 100, log.size()}) {
            model::RecoveryReport rep = ra.analyze(cut);
            std::printf("crash after %zu durable writes: %s", cut,
                        rep.consistent ? "recoverable" : "INCONSISTENT");
            if (rep.consistent && cut > 0) {
                unsigned partials = 0;
                for (const auto &c : rep.cores)
                    partials += c.hasPartialEpoch ? 1 : 0;
                std::printf(" (%u cores with an undo-able partial "
                            "epoch)",
                            partials);
            }
            std::printf("\n");
            for (const auto &p : rep.problems)
                std::printf("  %s\n", p.c_str());
            allOk = allOk && rep.consistent;
        }

        // Exhaustive sweep: every crash instant must be recoverable.
        const std::size_t bad = ra.firstInconsistency();
        std::printf("exhaustive sweep over %zu crash points: %s\n",
                    log.size() + 1,
                    bad > log.size() ? "all recoverable"
                                     : "INCONSISTENCY FOUND");
        allOk = allOk && bad > log.size();
        return res.completed && res.violations.empty() && allOk ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
