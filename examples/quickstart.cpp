/**
 * @file
 * Quickstart: build the paper's Table 1 machine, run the hash
 * micro-benchmark under Buffered Epoch Persistency with the LB++
 * barrier, and print headline numbers plus the ordering-checker verdict.
 *
 *   $ ./examples/quickstart [opsPerThread]
 */

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "model/system.hh"
#include "workload/workload_factory.hh"

using namespace persim;

int
main(int argc, char **argv)
{
    const std::uint64_t ops = argc > 1 ? std::atoll(argv[1]) : 200;
    try {
        // 1. Configure the machine (Table 1 defaults) and pick a
        //    persistency model + barrier implementation.
        model::SystemConfig cfg = model::SystemConfig::paperTable1();
        applyPersistencyModel(cfg,
                              model::PersistencyModel::BufferedEpoch,
                              persist::BarrierKind::LBPP);
        std::printf("system: %s\n", cfg.describe().c_str());

        // 2. Build the system and attach one workload per core.
        model::System sys(cfg);
        workload::MicroConfig mc;
        mc.kind = workload::MicroKind::Hash;
        mc.numThreads = cfg.numCores;
        mc.opsPerThread = ops;
        auto workloads = workload::makeMicroWorkloads(mc);
        for (unsigned t = 0; t < cfg.numCores; ++t)
            sys.setWorkload(static_cast<CoreId>(t),
                            std::move(workloads[t]));

        // 3. Run to completion (the end-of-run drain persists every
        //    outstanding epoch) and inspect the result.
        model::SimResult res = sys.run();
        std::printf("completed:            %s\n",
                    res.completed ? "yes" : "NO");
        std::printf("transactions:         %llu\n",
                    static_cast<unsigned long long>(res.transactions));
        std::printf("execution time:       %.3f Mcycles\n",
                    res.execTicks / 1e6);
        std::printf("throughput:           %.1f txn/Mcycle\n",
                    res.throughput());
        std::printf("persist drain:        +%.3f Mcycles\n",
                    (res.drainTicks - res.execTicks) / 1e6);
        std::printf("ordering violations:  %zu\n",
                    res.violations.size());

        // 4. Pull a few interesting counters out of the stat tree.
        auto stats = sys.stats();
        std::printf("intra-thread conflicts: %.0f\n",
                    stats["persist.intraConflicts"]);
        std::printf("inter-thread conflicts: %.0f\n",
                    stats["persist.interConflicts"]);
        std::printf("IDT resolutions:        %.0f\n",
                    stats["persist.idtResolutions"]);
        return res.completed && res.violations.empty() ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
