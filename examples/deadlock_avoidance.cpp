/**
 * @file
 * Persistence-deadlock avoidance by epoch splitting (§3.3).
 *
 * Two threads build the paper's Figure 5 pattern: each writes a line in
 * a long-running epoch, then reads the line the *other* thread wrote.
 * Under LB each read must wait for the other thread's epoch to persist;
 * since both epochs are still ongoing, the waits are circular.
 *
 * With splitting disabled the run deadlocks (the simulator detects the
 * quiesced machine and reports it); with the paper's avoidance scheme
 * the ongoing source epochs split and both threads finish.
 *
 *   $ ./examples/deadlock_avoidance
 */

#include <cstdio>
#include <exception>
#include <memory>
#include <vector>

#include "model/system.hh"

using namespace persim;

namespace
{

/** One side of the Figure 5 circular-dependence ladder. */
class Figure5Thread : public cpu::Workload
{
  public:
    /**
     * @param mine Line this thread writes (inside its epoch).
     * @param theirs Line the other thread writes (read afterwards).
     */
    Figure5Thread(Addr mine, Addr theirs) : _mine(mine), _theirs(theirs) {}

    cpu::MemOp
    next(Tick) override
    {
        switch (_step++) {
          case 0:
            return cpu::MemOp::store(_mine);
          case 1:
            // Give the other thread time to complete its store, so both
            // epochs are ongoing and dirty when the cross reads happen.
            return cpu::MemOp::compute(2000);
          case 2:
            return cpu::MemOp::load(_theirs); // the circular edge
          case 3:
            return cpu::MemOp::store(_mine + kLineBytes);
          case 4:
            return cpu::MemOp::barrier();
          default:
            return cpu::MemOp::halt();
        }
    }

  private:
    Addr _mine;
    Addr _theirs;
    unsigned _step = 0;
};

model::SimResult
runFigure5(bool splitOngoing)
{
    model::SystemConfig cfg = model::SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, model::PersistencyModel::BufferedEpoch,
                          persist::BarrierKind::LB);
    cfg.barrier.splitOngoing = splitOngoing;
    model::System sys(cfg);
    const Addr lineA = Addr{1} << 32;
    const Addr lineX = (Addr{1} << 32) + 4096;
    sys.setWorkload(0, std::make_unique<Figure5Thread>(lineA, lineX));
    sys.setWorkload(1, std::make_unique<Figure5Thread>(lineX, lineA));
    return sys.run();
}

} // namespace

int
main()
{
    try {
        std::printf("Figure 5 circular epoch dependence, two threads.\n\n");

        model::SimResult naive = runFigure5(/*splitOngoing=*/false);
        std::printf("without epoch splitting: %s\n",
                    naive.deadlocked
                        ? "DEADLOCK (as the paper predicts)"
                        : (naive.completed ? "completed (unexpected!)"
                                           : "did not complete"));

        model::SimResult split = runFigure5(/*splitOngoing=*/true);
        std::printf("with epoch splitting:    %s, %zu ordering "
                    "violations\n",
                    split.completed ? "completed" : "FAILED",
                    split.violations.size());

        const bool ok = naive.deadlocked && split.completed &&
                        split.violations.empty();
        std::printf("\n%s\n", ok ? "OK: splitting breaks the deadlock "
                                   "and preserves persist order"
                                 : "FAILED");
        return ok ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
